"""The reproduction service: sessions, batch scheduling, typed reports.

:class:`ReproService` is the developer-site daemon of the paper's
user/developer split, grown to fleet scale: traces stream into a
:class:`~repro.service.inbox.TraceInbox` (bytes, files or a watched spool
directory), deduplicate into clusters of equivalent reports — same
``(plan fingerprint, crash site)`` bug *and* the same recording, see the
inbox module for the two-level semantics — and
:meth:`ReproService.process` dispatches one replay search per cluster —
smallest estimated search first — either inline or on a persistent process
pool whose workers rebuild a serial engine from the pickled
:class:`~repro.replay.engine._EngineSpec`.  Every member of a cluster
receives the cluster's :class:`ReproductionReport`; because the replay
engine commits speculative work in serial pop order, each report's explored
search tree is byte-identical to running that trace alone through
:meth:`Pipeline.reproduce_from_trace`.

:class:`ReproSession` is the client-side handle: a session ingests traces,
remembers which ones are *its own*, and reads their reports back — the shape
a per-connection context takes once a network transport fronts the inbox.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.lang.program import Program
from repro.planner import (FleetObservations, PlanLedger, PlanVersion,
                           ReplanPolicy, Replanner, plan_fingerprint_digest)
from repro.replay.engine import ReplayEngine, ReplayOutcome, WorkerCrashError
from repro.service.config import ReproConfig
from repro.service.inbox import IngestResult, SpoolJournal, TraceCluster, \
    TraceInbox
from repro.service.supervisor import (
    SearchDeadlineExceeded,
    SearchJob,
    SearchSupervisor,
)
from repro.telemetry import (
    MetricsRegistry,
    RegistrySnapshot,
    SECONDS_BUCKETS,
    scoped,
    span,
    write_jsonl,
)
from repro.trace import TraceError, load_trace

__all__ = [
    "ReproService",
    "ReproSession",
    "ReproductionReport",
    "ServiceStats",
    "outcome_fingerprint",
]


def outcome_fingerprint(outcome: ReplayOutcome) -> tuple:
    """Everything identifying an explored search tree (never timings/costs).

    The same tuple the replay benchmarks fingerprint: run records, pending
    statistics, the reproducing input and the crash location.  Two searches
    with equal fingerprints explored byte-identical trees.
    """

    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced,
        outcome.runs,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


@dataclass
class ReproductionReport:
    """Typed result of one trace's reproduction (the service API response).

    One report per *trace*; every member of a cluster carries the same
    underlying search result (that is the dedup contract), distinguished by
    ``trace_id``/``duplicate_of``.
    """

    trace_id: str
    cluster_id: str
    program: str
    scenario: str
    reproduced: bool
    runs: int
    wall_seconds: float
    timed_out: bool
    crash_site: Optional[Tuple[str, int]]
    found_input: Dict[str, int] = field(default_factory=dict)
    run_records: Tuple[Tuple[str, int, int, str], ...] = ()
    pending_stats: Dict[str, int] = field(default_factory=dict)
    solver_calls: int = 0
    warm_start_hits: int = 0
    #: Trace id of the cluster representative whose search produced this
    #: report ("" when this trace was the representative itself).
    duplicate_of: str = ""
    error: str = ""

    @classmethod
    def from_outcome(cls, outcome: ReplayOutcome, *, trace_id: str,
                     cluster_id: str, program: str, scenario: str,
                     duplicate_of: str = "") -> "ReproductionReport":
        crash = None
        if outcome.crash_site is not None:
            crash = (outcome.crash_site.function, outcome.crash_site.line)
        return cls(
            trace_id=trace_id, cluster_id=cluster_id, program=program,
            scenario=scenario, reproduced=outcome.reproduced,
            runs=outcome.runs, wall_seconds=outcome.wall_seconds,
            timed_out=outcome.timed_out, crash_site=crash,
            found_input=dict(outcome.found_input),
            run_records=tuple((r.outcome, r.consumed_bits, r.constraints,
                               r.deviation) for r in outcome.run_records),
            pending_stats=dict(outcome.pending_stats),
            solver_calls=outcome.solver_calls,
            warm_start_hits=outcome.warm_start_hits,
            duplicate_of=duplicate_of,
        )

    def fingerprint(self) -> tuple:
        """The explored-search-tree identity (see :func:`outcome_fingerprint`)."""

        return (
            self.reproduced,
            self.runs,
            tuple(self.run_records),
            tuple(sorted(self.pending_stats.items())),
            tuple(sorted(self.found_input.items())),
            self.crash_site,
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "reproduced": self.reproduced,
            "runs": self.runs,
            "wall_seconds": round(self.wall_seconds, 4),
            "timed_out": self.timed_out,
            "crash_site": list(self.crash_site) if self.crash_site else None,
            "found_input": dict(self.found_input),
            "run_records": [list(record) for record in self.run_records],
            "pending_stats": dict(self.pending_stats),
            "solver_calls": self.solver_calls,
            "warm_start_hits": self.warm_start_hits,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object], *, trace_id: str,
                  cluster: TraceCluster) -> "ReproductionReport":
        crash = payload.get("crash_site")
        representative = cluster.members[0] if cluster.members else ""
        return cls(
            trace_id=trace_id, cluster_id=cluster.cluster_id,
            program=cluster.program, scenario=cluster.scenario,
            reproduced=payload["reproduced"], runs=payload["runs"],
            wall_seconds=payload["wall_seconds"],
            timed_out=payload["timed_out"],
            crash_site=tuple(crash) if crash else None,
            found_input=dict(payload["found_input"]),
            run_records=tuple(tuple(record)
                              for record in payload["run_records"]),
            pending_stats=dict(payload["pending_stats"]),
            solver_calls=payload["solver_calls"],
            warm_start_hits=payload["warm_start_hits"],
            duplicate_of="" if trace_id == representative else representative,
            error=payload.get("error", ""),
        )


@dataclass
class ServiceStats:
    """Aggregate service counters (the observability surface).

    .. deprecated:: 0.4
        Thin shim over the :mod:`repro.telemetry` registry: the live
        counters are the ``service.*`` metrics on
        :meth:`ReproService.telemetry`, and :meth:`ReproService.stats`
        builds this dataclass from them.  Kept as the stable typed surface
        for existing callers (CLI, benchmarks, experiments).
    """

    traces_ingested: int = 0
    clusters_total: int = 0
    clusters_pending: int = 0
    clusters_done: int = 0
    searches_run: int = 0
    reports_fanned_out: int = 0
    reproduced_clusters: int = 0
    rejected_traces: int = 0
    process_wall_seconds: float = 0.0

    @property
    def dedup_ratio(self) -> Optional[float]:
        """Traces served per replay search (1.0 = no dedup win).

        ``None`` before any search has run: an empty batch has no ratio, and
        the old ``1.0`` placeholder read as "we ran searches and saved
        nothing", which is not what an idle service did.
        """

        if not self.searches_run:
            return None
        return self.reports_fanned_out / self.searches_run

    def to_json(self) -> Dict[str, object]:
        payload = {name: getattr(self, name)
                   for name in self.__dataclass_fields__}
        payload["process_wall_seconds"] = round(self.process_wall_seconds, 4)
        if self.dedup_ratio is not None:
            payload["dedup_ratio"] = round(self.dedup_ratio, 4)
        return payload


#: Instrumentation methods whose plans rebuild deterministically without any
#: pre-deployment analysis; for traces recorded under these the service
#: re-derives the developer-side plan and enforces the strict
#: matched-binaries fingerprint check (exactly like the single-trace replay
#: command).  Analysis-based plans are still guarded by the program-level
#: branch-location check in :meth:`ReplayEngine.from_trace`.
ANALYSIS_FREE_METHODS = frozenset((InstrumentationMethod.ALL_BRANCHES.value,
                                   InstrumentationMethod.NONE.value))


def _search_worker(spec) -> ReplayOutcome:
    """Process-pool entry: rebuild a serial engine from *spec* and search."""

    return spec.build_engine().reproduce()


class ReproSession:
    """A client handle on the service: ingest traces, read their reports."""

    def __init__(self, service: "ReproService", name: str = "") -> None:
        self.service = service
        self.name = name or f"session-{id(self):x}"
        self.trace_ids: List[str] = []

    def ingest_bytes(self, data: bytes, source: str = "bytes") -> IngestResult:
        result = self.service.ingest_bytes(data, source=source)
        self.trace_ids.append(result.trace_id)
        return result

    def ingest_file(self, path: str) -> IngestResult:
        result = self.service.ingest_file(path)
        self.trace_ids.append(result.trace_id)
        return result

    def report(self, trace_id: str) -> Optional[ReproductionReport]:
        return self.service.report(trace_id)

    def reports(self) -> Dict[str, Optional[ReproductionReport]]:
        """Reports for every trace this session ingested (None = pending)."""

        return {trace_id: self.service.report(trace_id)
                for trace_id in self.trace_ids}

    def telemetry(self) -> "RegistrySnapshot":
        """The service's metrics snapshot (see :meth:`ReproService.telemetry`)."""

        return self.service.telemetry()

    def __enter__(self) -> "ReproSession":
        return self

    def __exit__(self, *_exc) -> None:
        return None


class ReproService:
    """The canonical developer-site API: inbox + scheduler + worker pool."""

    def __init__(self, root: str,
                 config: Optional[ReproConfig] = None,
                 programs: Optional[Dict[str, str]] = None,
                 resolver: Optional[Callable[[str], tuple]] = None) -> None:
        if config is None:
            config = ReproConfig()
        elif isinstance(config, PipelineConfig):
            config = ReproConfig.from_legacy(config)
        self.config = config
        # The service's metrics registry is always real — ServiceStats reads
        # from it, so the counters must count with telemetry off too.  The
        # ``telemetry.enabled`` knob gates the *extra* surface: wall-clock
        # metrics (ingest latency), spans, per-search registry merges, VM
        # profiling and the JSON-lines sink.
        self._registry = MetricsRegistry()
        self.inbox = TraceInbox(root,
                                persist=config.service.persist,
                                store_traces=config.service.store_traces,
                                spool_pattern=config.service.spool_pattern,
                                max_trace_bytes=config.service.max_trace_bytes,
                                max_rejected=config.service.max_rejected_entries,
                                registry=self._registry)
        self._programs_src = dict(programs or {})
        self._resolver = resolver
        self._programs: Dict[str, Program] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._telemetry_on = config.telemetry.enabled
        #: Seeded fault spec shipped into supervised search workers
        #: (worker_kill / checkpoint_fail streams); set by the chaos harness
        #: or the network listener when it runs with faults.
        self.search_faults = None
        #: Supervisor-side injector for in-process crash points
        #: (e.g. ``supervisor.after_checkpoint``).
        self.search_fault_injector = None
        self._search_journal: Optional[SpoolJournal] = None
        #: perf_counter arrival stamp per trace_id, consumed when the
        #: trace's cluster commits (ingest→report latency).
        self._arrivals: Dict[str, float] = {}
        self._flushes = 0
        self._plan_ledger: Optional[PlanLedger] = None
        #: Reports fanned out since the last replan (the automatic trigger
        #: counter when ``service.replan_after_reports`` is set).
        self._reports_since_replan = 0

    # -- ingestion (delegated) --------------------------------------------------

    def _note_arrival(self, result: IngestResult) -> IngestResult:
        self._registry.counter("service.traces_ingested").inc()
        if result.duplicate:
            self._registry.counter("service.duplicate_traces").inc()
        if self._telemetry_on:
            self._arrivals[result.trace_id] = time.perf_counter()
        return result

    def ingest_bytes(self, data: bytes, source: str = "bytes") -> IngestResult:
        return self._note_arrival(self.inbox.ingest_bytes(data, source=source))

    def ingest_file(self, path: str) -> IngestResult:
        return self._note_arrival(self.inbox.ingest_file(path))

    def poll_spool(self, spool_dir: str) -> List[IngestResult]:
        return [self._note_arrival(result)
                for result in self.inbox.poll_spool(spool_dir)]

    def ingest_spooled(self, path: str, data: bytes) -> IngestResult:
        """Ingest bytes the caller already journaled into the spool.

        The network listener's path (see :mod:`repro.service.net`): the
        spool file is durable before this is called, so the receipt this
        returns is safe to acknowledge to the uploader.  An idempotent
        re-ingest of an already-recorded path returns the original receipt
        without re-counting an arrival.
        """

        known = os.path.abspath(path) in self.inbox.spooled
        result = self.inbox.ingest_spooled(path, data)
        return result if known else self._note_arrival(result)

    @property
    def registry(self):
        """The live service metrics registry (counters always count)."""

        return self._registry

    def session(self, name: str = "") -> ReproSession:
        return ReproSession(self, name)

    # -- program resolution -----------------------------------------------------

    def _resolve_source(self, name: str) -> Tuple[str, frozenset]:
        if name in self._programs_src:
            entry = self._programs_src[name]
            if isinstance(entry, tuple):
                return entry[0], frozenset(entry[1])
            from repro.workloads import library_functions_for

            return entry, library_functions_for(entry)
        if self._resolver is not None:
            resolved = self._resolver(name)
            if resolved is not None:
                return resolved[0], frozenset(resolved[1])
        from repro.workloads import workload_registry

        table = workload_registry()
        if name in table:
            source, _environment, library = table[name]
            return source, frozenset(library)
        raise KeyError(
            f"no program registered for trace program name {name!r}; "
            "pass programs={...} or a resolver to ReproService")

    def program_for(self, name: str) -> Program:
        """The developer's copy of the binary for *name* (cached)."""

        program = self._programs.get(name)
        if program is None:
            source, library = self._resolve_source(name)
            program = Program.from_source(name=name, source=source,
                                          library_functions=set(library))
            self._programs[name] = program
        return program

    # -- the scheduler ----------------------------------------------------------

    def process(self, max_clusters: Optional[int] = None
                ) -> Dict[str, ReproductionReport]:
        """Run replay searches for pending clusters; fan reports out.

        Clusters dispatch in priority order (smallest estimated search
        first, per the ``service.priority`` section).  With
        ``service.workers > 1`` the searches run on a persistent process
        pool, one serial engine per worker; otherwise inline.  Returns a
        report per *member trace* of every cluster processed in this call.
        """

        start = time.perf_counter()
        clusters = self.inbox.pending_clusters(self.config.service.priority)
        if max_clusters is not None:
            clusters = clusters[:max_clusters]
        self._registry.gauge("service.queue_depth", timing=True).set(
            len(clusters))
        reports: Dict[str, ReproductionReport] = {}
        if self._telemetry_on:
            with scoped(self._registry):
                with span("service.process", clusters=len(clusters)):
                    self._process_clusters(clusters, reports)
        else:
            self._process_clusters(clusters, reports)
        self._registry.counter("service.process_wall_seconds",
                               timing=True).inc(time.perf_counter() - start)
        # The automatic replan trigger runs strictly after the batch: every
        # search dispatched above has committed against the plan version its
        # trace was recorded under, so revising the ledger here can never
        # touch an in-flight search.
        svc = self.config.service
        if svc.replan_after_reports > 0:
            self._reports_since_replan += len(reports)
            if self._reports_since_replan >= svc.replan_after_reports:
                self.replan()
        if self._telemetry_on and self.config.telemetry.jsonl_path:
            self.flush_telemetry(self.config.telemetry.jsonl_path)
        return reports

    def _use_supervisor(self) -> bool:
        """Supervised dispatch whenever a search needs process isolation.

        Multi-worker batches, checkpointing, deadlines, preemption and
        fault injection all require searches the service can kill, restart
        and resume; plain single-worker batches keep the cheap inline path
        (identical results either way — the engine's commit discipline).
        """

        svc = self.config.service
        if not svc.supervised:
            return False
        return (svc.workers > 1
                or svc.checkpoint_every_runs > 0
                or svc.search_deadline_seconds > 0
                or svc.preempt_after_seconds > 0
                or self.search_faults is not None)

    def _process_clusters(self, clusters: List[TraceCluster],
                          reports: Dict[str, ReproductionReport]) -> None:
        if self._use_supervisor():
            self._process_supervised(clusters, reports)
            return
        jobs: List[Tuple[TraceCluster, object]] = []
        for cluster in clusters:
            try:
                engine = self._engine_for(cluster)
            except (TraceError, KeyError) as exc:
                self._fail_cluster(cluster, exc, reports)
                continue
            if self.config.service.workers > 1:
                jobs.append((cluster, self._ensure_pool().submit(
                    _search_worker, engine.to_spec())))
            else:
                jobs.append((cluster, engine.reproduce()))
        for cluster, job in jobs:
            outcome = job.result() if hasattr(job, "result") else job
            self._commit_cluster(cluster, outcome, reports)

    def _process_supervised(self, clusters: List[TraceCluster],
                            reports: Dict[str, ReproductionReport]) -> None:
        """Dispatch the batch through the crash-surviving scheduler.

        Terminal supervisor states map onto the report surface: ``ok``
        commits like any search; ``deadline`` fails the cluster with a typed
        :class:`~repro.service.supervisor.SearchDeadlineExceeded`;
        ``quarantined`` (retries exhausted, or a corrupt checkpoint)
        additionally lands in the rejection ledger so operators see poison
        searches where they already look for poison uploads.
        """

        supervisor = SearchSupervisor(
            self.inbox.root, self.config, registry=self._registry,
            journal=self._journal(), fault_spec=self.search_faults,
            faults=self.search_fault_injector)
        jobs: List[SearchJob] = []
        by_id: Dict[str, TraceCluster] = {}
        for cluster in clusters:
            try:
                engine = self._engine_for(cluster)
            except (TraceError, KeyError) as exc:
                self._fail_cluster(cluster, exc, reports)
                continue
            jobs.append(SearchJob(cluster_id=cluster.cluster_id,
                                  spec=engine.to_spec(), bits=cluster.bits))
            by_id[cluster.cluster_id] = cluster
        results = supervisor.run(jobs)
        for job in jobs:
            cluster = by_id[job.cluster_id]
            result = results.get(job.cluster_id)
            if result is None:  # defensive: the supervisor always answers
                self._fail_cluster(cluster, WorkerCrashError(
                    "supervisor returned no result"), reports)
            elif result.kind == "ok":
                self._commit_cluster(cluster, result.outcome, reports)
            elif result.kind == "deadline":
                self._fail_cluster(cluster,
                                   SearchDeadlineExceeded(result.error),
                                   reports)
            elif result.kind == "quarantined":
                exc = WorkerCrashError(result.error)
                self.inbox.reject(f"cluster:{cluster.cluster_id}", exc)
                self._fail_cluster(cluster, exc, reports)
            else:  # "failed": a typed in-worker error, no retry value
                self._fail_cluster(cluster, WorkerCrashError(result.error),
                                   reports)

    def _journal(self) -> SpoolJournal:
        """The service-root journal carrying SEARCH_BEGIN/END records."""

        if self._search_journal is None:
            self._search_journal = SpoolJournal(self.inbox.root)
        return self._search_journal

    def resume_scan(self) -> List[str]:
        """Startup reconciliation of the checkpoint store (crash recovery).

        Deletes checkpoints (and flags/heartbeats/orphaned results) of
        clusters that are no longer pending — their reports are durable, the
        snapshot is stale — and returns the cluster ids whose searches were
        in flight when the previous process died.  Those clusters are still
        ``pending``, so the next :meth:`process` resumes each from its
        checkpoint exactly once; the SEARCH_BEGIN/END journal records make
        the same fact auditable after the files are gone.
        """

        svc = self.config.service
        checkpoint_dir = svc.checkpoint_dir or os.path.join(
            self.inbox.root, "checkpoints")
        resumable: List[str] = []
        if not os.path.isdir(checkpoint_dir):
            return resumable
        pending = {cluster.cluster_id
                   for cluster in self.inbox.pending_clusters(svc.priority)}
        for name in sorted(os.listdir(checkpoint_dir)):
            path = os.path.join(checkpoint_dir, name)
            if name.endswith(".ckpt"):
                cluster_id = name[:-len(".ckpt")]
                if cluster_id in pending:
                    resumable.append(cluster_id)
                    self._registry.counter("service.supervisor.resumable",
                                           timing=True).inc()
                    continue
            try:
                os.remove(path)  # stale snapshot, flag, heartbeat or result
            except OSError:
                pass
        return resumable

    def _engine_for(self, cluster: TraceCluster) -> ReplayEngine:
        representative = cluster.members[0]
        trace = load_trace(self.inbox.trace_path(representative))
        program = self.program_for(cluster.program)
        expect_plan = None
        if trace.plan.method in ANALYSIS_FREE_METHODS:
            expect_plan = build_plan(
                InstrumentationMethod(trace.plan.method),
                program.branch_locations,
                log_syscalls=trace.plan.log_syscalls)
        else:
            # Analysis-based and replanned plans cannot be re-derived here,
            # but the plan ledger can vouch for them: a trace whose plan
            # fingerprint matches a registered version is verified against
            # that version's plan — the strict matched-binaries check for
            # every generation of a mixed-fingerprint fleet.
            entry = self.plan_ledger.by_fingerprint(
                cluster.program, plan_fingerprint_digest(trace.plan))
            if entry is not None:
                expect_plan = entry.plan()
        replay = self.config.replay
        execution = self.config.execution
        return ReplayEngine.from_trace(
            program, trace,
            expect_plan=expect_plan,
            budget=replay.budget,
            search_order=replay.search_order,
            backend=execution.backend,
            workers=replay.workers,
            worker_kind=replay.worker_kind,
            specialize_plans=execution.specialize_plans,
            register_allocation=execution.register_allocation,
            fuse_compare_branch=execution.fuse_compare_branch,
            specialize_ints=execution.specialize_ints,
            synth_superinstructions=execution.synth_superinstructions,
            max_call_depth=execution.max_call_depth,
            warm_start=replay.warm_start,
            telemetry=self.config.telemetry.enabled,
            profile_opcodes=self.config.telemetry.profile_vm,
        )

    def _commit_cluster(self, cluster: TraceCluster, outcome: ReplayOutcome,
                        reports: Dict[str, ReproductionReport]) -> None:
        self._registry.counter("service.searches_run").inc()
        if outcome.reproduced:
            self._registry.counter("service.reproduced_clusters").inc()
        if outcome.telemetry is not None:
            # Pull the search's own metrics (replay.* counters/histograms,
            # vm.* profiling) into the service registry; the snapshot crossed
            # the pool boundary as plain picklable data.
            self._registry.merge_snapshot(outcome.telemetry)
        representative = cluster.members[0]
        base = ReproductionReport.from_outcome(
            outcome, trace_id=representative, cluster_id=cluster.cluster_id,
            program=cluster.program, scenario=cluster.scenario)
        self.inbox.mark_done(cluster.cluster_id, base.to_json())
        for trace_id in cluster.members:
            if trace_id == representative:
                reports[trace_id] = base
            else:
                reports[trace_id] = ReproductionReport.from_json(
                    base.to_json(), trace_id=trace_id, cluster=cluster)
            self._registry.counter("service.reports_fanned_out").inc()
            self._observe_latency(trace_id)

    def _fail_cluster(self, cluster: TraceCluster, exc: Exception,
                      reports: Dict[str, ReproductionReport]) -> None:
        reason = f"{type(exc).__name__}: " + " ".join(str(exc).split())
        payload = {
            "reproduced": False, "runs": 0, "wall_seconds": 0.0,
            "timed_out": False, "crash_site": None, "found_input": {},
            "run_records": [], "pending_stats": {}, "solver_calls": 0,
            "warm_start_hits": 0, "error": reason,
        }
        self.inbox.mark_done(cluster.cluster_id, payload, failed=True)
        self._registry.counter("service.failed_clusters").inc()
        for trace_id in cluster.members:
            reports[trace_id] = ReproductionReport.from_json(
                payload, trace_id=trace_id, cluster=cluster)
            self._registry.counter("service.reports_fanned_out").inc()
            self._observe_latency(trace_id)

    def _observe_latency(self, trace_id: str) -> None:
        """Ingest→report latency for one served trace (telemetry only).

        The ``service.ingest_latency`` histogram is the paper-service SLO
        metric: time from a trace entering the inbox to its report being
        fanned out.  Only traces ingested by *this* process carry an arrival
        stamp; clusters restored from a persisted inbox do not.
        """

        arrival = self._arrivals.pop(trace_id, None)
        if arrival is None:
            return
        self._registry.histogram(
            "service.ingest_latency", SECONDS_BUCKETS,
            timing=True).observe(time.perf_counter() - arrival)

    # -- adaptive planning (repro.planner) --------------------------------------

    @property
    def plan_ledger(self) -> PlanLedger:
        """The versioned plan registry persisted next to this inbox."""

        if self._plan_ledger is None:
            self._plan_ledger = PlanLedger.load(self.inbox.root)
        return self._plan_ledger

    def replan(self, seed: Optional[int] = None,
               max_drop_fraction: Optional[float] = None
               ) -> Dict[str, PlanVersion]:
        """Revise instrumentation plans from everything the fleet reported.

        Walks the done-and-reproduced clusters (sorted by cluster id, so the
        same history always folds in the same order), registers each trace's
        plan in the ledger, re-profiles each reproduced run at the developer
        site with the report's ``found_input`` (full branch visibility — the
        evidence the user site cannot afford to collect), and asks the
        seeded :class:`~repro.planner.replanner.Replanner` for the next plan
        version of every observed program.  New versions are registered with
        their :class:`~repro.planner.replanner.PlanRevision` diffs and the
        ledger is saved; searches already dispatched against older versions
        are unaffected — their traces still resolve by fingerprint.

        Returns the newly registered versions keyed by program name (empty
        once the policy has converged for every program).
        """

        from repro.concolic.engine import ConcolicEngine
        from repro.core.pipeline import Pipeline

        svc = self.config.service
        policy = ReplanPolicy(
            seed=svc.replan_seed if seed is None else seed,
            max_drop_fraction=(svc.replan_max_drop_fraction
                               if max_drop_fraction is None
                               else max_drop_fraction))
        ledger = self.plan_ledger
        observations = FleetObservations()
        pipelines: Dict[str, Pipeline] = {}
        for cluster_id in sorted(self.inbox.clusters):
            cluster = self.inbox.clusters[cluster_id]
            if (cluster.status != "done" or not cluster.report
                    or not cluster.report.get("reproduced")):
                continue
            representative = cluster.members[0]
            try:
                trace = load_trace(self.inbox.trace_path(representative))
            except (TraceError, KeyError, OSError):
                continue  # store_traces off or a lost file: no evidence
            program = self.program_for(cluster.program)
            ledger.register_base(cluster.program, trace.plan)
            report = ReproductionReport.from_json(
                cluster.report, trace_id=representative, cluster=cluster)
            observations.observe_report(cluster.program, report,
                                        crash_site=cluster.crash_site)
            environment = trace.environment_spec.to_environment()
            engine = ConcolicEngine(program, environment,
                                    backend=self.config.execution.backend)
            recorder = engine.profile_run(overrides=dict(report.found_input))
            observations.observe_profile(cluster.program, trace.plan,
                                         recorder)
            pipeline = pipelines.get(cluster.program)
            if pipeline is None:
                pipeline = pipelines[cluster.program] = Pipeline(
                    program, self.config)
            observations.observe_recording(
                cluster.program, pipeline.baseline_steps(environment))
        revisions: Dict[str, PlanVersion] = {}
        replanner = Replanner(policy)
        for program_name in sorted(observations.programs):
            latest = ledger.latest(program_name)
            if latest is None:
                continue
            proposal = replanner.propose(program_name, latest.plan(),
                                         observations,
                                         version=latest.version + 1,
                                         parent=latest.version)
            if proposal is None:
                continue
            plan, revision = proposal
            revisions[program_name] = ledger.register(
                program_name, plan, revision.to_json())
            self._registry.counter("service.replans").inc()
        if ledger.programs:
            ledger.save()
        self._reports_since_replan = 0
        return revisions

    # -- queries ----------------------------------------------------------------

    def report(self, trace_id: str) -> Optional[ReproductionReport]:
        """The (possibly restored-from-disk) report for one trace, or None."""

        cluster = self.inbox.cluster_of(trace_id)
        if cluster.report is None:
            return None
        return ReproductionReport.from_json(cluster.report, trace_id=trace_id,
                                            cluster=cluster)

    def stats(self) -> ServiceStats:
        described = self.inbox.describe()
        counters = self._registry.snapshot().counters
        return ServiceStats(
            traces_ingested=described["traces"],
            clusters_total=described["clusters"],
            clusters_pending=described["pending"],
            clusters_done=described["done"],
            searches_run=int(counters.get("service.searches_run", 0)),
            reports_fanned_out=int(
                counters.get("service.reports_fanned_out", 0)),
            reproduced_clusters=int(
                counters.get("service.reproduced_clusters", 0)),
            rejected_traces=described["rejected"],
            process_wall_seconds=float(
                counters.get("service.process_wall_seconds", 0.0)),
        )

    def telemetry(self) -> RegistrySnapshot:
        """A snapshot of the service registry (the typed export surface).

        Always available; with ``telemetry.enabled`` it additionally carries
        the per-search replay/VM metrics, spans and latency histograms.
        """

        return self._registry.snapshot()

    def flush_telemetry(self, path: str) -> None:
        """Append the current registry snapshot to the JSON-lines sink."""

        self._flushes += 1
        write_jsonl(path, self._registry.snapshot(),
                    context={"source": "repro.service", "flush": self._flushes},
                    append=self._flushes > 1)

    # -- lifecycle --------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.service.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._search_journal is not None:
            self._search_journal.close()
            self._search_journal = None

    def __enter__(self) -> "ReproService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
