"""Record a workload crash to a trace file, or reproduce one from a file.

The command-line face of the paper's user/developer split, packaged as
``python -m repro`` (also installed as the ``repro`` console script and
wrapped by ``scripts/trace_tool.py``).  ``record`` plays the user machine
(instrument, run, crash, write the compact bug report); ``replay`` plays the
developer machine for a single trace; ``inbox`` and ``serve-batch`` play the
developer machine at fleet scale — ingest batches of traces into a
deduplicating inbox and run one replay search per ``(fingerprint, crash
site)`` cluster::

    python -m repro record --workload diff-exp1 --out spool/u1.trace
    python -m repro record --workload diff-exp1 --out spool/u2.trace
    python -m repro serve-batch --root inbox --spool spool

Exit codes: 0 success (replay: crash reproduced; serve-batch: every cluster
reproduced), 1 replay search failed, 2 usage / trace-format / fingerprint
errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import InstrumentationMethod, ReplayBudget, TraceError, load_trace
from repro.service import ReproConfig, ReproService, workload_pipeline
from repro.service.service import ANALYSIS_FREE_METHODS
from repro.workloads import workload_registry


def build_config(args) -> ReproConfig:
    """The layered service config for one CLI invocation."""

    config = ReproConfig()
    config.execution.backend = getattr(args, "backend", "vm")
    if hasattr(args, "workers"):
        config.replay.workers = args.workers
        config.replay.worker_kind = args.worker_kind
        config.replay.warm_start = not args.no_warm_start
    if hasattr(args, "max_runs"):
        config.replay.budget = ReplayBudget(max_runs=args.max_runs,
                                            max_seconds=args.max_seconds)
    if hasattr(args, "service_workers"):
        config.service.workers = args.service_workers
    if getattr(args, "telemetry", False):
        config.telemetry.enabled = True
        config.telemetry.profile_vm = getattr(args, "profile_vm", False)
        config.telemetry.jsonl_path = getattr(args, "telemetry_jsonl", None)
    return config


def _pipeline_for(workload: str, args):
    """``(pipeline, environment)`` or ``None`` after the usage message."""

    try:
        return workload_pipeline(workload, config=build_config(args))
    except KeyError:
        print(f"unknown workload {workload!r}; see `trace_tool.py list`",
              file=sys.stderr)
        return None


def cmd_list(_args) -> int:
    for name in sorted(workload_registry()):
        print(name)
    return 0


def cmd_record(args) -> int:
    resolved = _pipeline_for(args.workload, args)
    if resolved is None:
        return 2
    pipeline, environment = resolved
    method = InstrumentationMethod(args.method)
    plan = pipeline.make_plan(method, environment=environment)
    recording = pipeline.record_trace(plan, environment, args.out,
                                      scaffold=not args.keep_input_data)
    crash = recording.crash_site
    print(f"recorded {args.workload} -> {args.out}")
    print(f"  bits={len(recording.bitvector)} "
          f"syscall_results={recording.syscall_log.count()} "
          f"crash={crash.function + ':' + str(crash.line) if crash else 'none'}")
    return 0


def cmd_info(args) -> int:
    if getattr(args, "telemetry", False):
        # The storage-observability view: per-section byte sizes + CRC as
        # JSON lines (the same record shape the telemetry sink uses), the
        # first consumer of the JSONL conventions outside the service.
        from repro.trace import describe_sections

        with open(args.trace, "rb") as handle:
            data = handle.read()
        described = describe_sections(data)
        base = {"type": "trace_section", "trace": args.trace,
                "version": described["version"], "crc32": described["crc32"],
                "crc_ok": described["crc_ok"]}
        for section in described["sections"]:
            print(json.dumps(dict(base, name=section["tag"],
                                  bytes=section["bytes"]), sort_keys=True))
        print(json.dumps({"type": "trace_total", "trace": args.trace,
                          "version": described["version"],
                          "crc32": described["crc32"],
                          "crc_ok": described["crc_ok"],
                          "header_bytes": described["header_bytes"],
                          "payload_bytes": described["payload_bytes"],
                          "total_bytes": described["total_bytes"]},
                         sort_keys=True))
        return 0
    from repro.planner import plan_fingerprint_digest, plan_version_of

    trace = load_trace(args.trace)
    payload = dict(trace.describe())
    # Which plan generation this trace was recorded under: the fingerprint
    # digest the inbox clusters by, and the ledger version carried in a
    # replanned plan's method string (0 = unversioned base plan).
    payload["plan_fingerprint"] = plan_fingerprint_digest(trace.plan)
    payload["plan_version"] = plan_version_of(trace.plan.method) or 0
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _suggest_fusions(args, counts) -> int:
    """Re-derive superinstruction candidates from a recorded profile.

    The data-driven half of ``repro.vm.synth``: score every catalog pair
    against this workload's compiled instruction streams and the recorded
    dispatch profile, mark what :func:`~repro.vm.synth.select_fusions`
    would pick, and flag selections missing from ``DEFAULT_FUSIONS`` (the
    signal that the shipped literal needs re-deriving).
    """

    from repro.vm import synth
    from repro.vm.compiler import compile_program
    from repro.vm.opcodes import OPCODE_NAMES

    resolved = _pipeline_for(args.suggest_fusions, args)
    if resolved is None:
        return 2
    pipeline, _environment = resolved
    compiled = compile_program(pipeline.program)
    ranked = synth.rank_candidates(synth.static_pair_counts(compiled), counts)
    selected = synth.select_fusions(compiled, counts)
    if not ranked:
        print(f"no fusible pairs scored for {args.suggest_fusions}: the "
              "profile and the compiled program share no catalog pair")
        return 0
    print(f"fusion candidates for {args.suggest_fusions} "
          f"(profile: {sum(counts.values())} dispatches, "
          f"* = selected by select_fusions):")
    for name, score in ranked:
        first, second = synth.PAIR_CATALOG[name]
        marker = "*" if name in selected else " "
        print(f" {marker} {name:<18} score={score:>10}  "
              f"({OPCODE_NAMES[first]};{OPCODE_NAMES[second]})")
    missing = sorted(set(selected) - set(synth.DEFAULT_FUSIONS))
    if missing:
        print(f"not in DEFAULT_FUSIONS (re-derive?): {', '.join(missing)}")
    return 0


_NO_PROFILE_LINE = ("no profile recorded: the telemetry source has no "
                    "vm.opcode.* counters (record with --telemetry "
                    "--profile-vm)")


def cmd_stats(args) -> int:
    """Render telemetry: a service root's live counters or a JSONL sink."""

    from repro.telemetry import read_jsonl, render_summary

    service = snapshot = None
    if args.jsonl:
        records = read_jsonl(args.jsonl)
    else:
        service = ReproService(args.root, config=build_config(args))
        snapshot = service.telemetry()
        records = [json.loads(line) for line in snapshot.jsonl_lines()]
    if args.opcodes is not None or args.suggest_fusions:
        from repro.vm import synth

        counts = synth.profile_from_records(records)
        if not counts:
            print(_NO_PROFILE_LINE)
            return 0
        if args.suggest_fusions:
            return _suggest_fusions(args, counts)
        print(synth.render_dispatch_table(counts, top=args.opcodes))
        return 0
    if args.jsonl:
        print(render_summary(records))
        return 0
    if args.json:
        print(json.dumps(service.stats().to_json(), sort_keys=True))
        print(json.dumps(snapshot.to_json(), sort_keys=True))
    else:
        print(f"inbox={json.dumps(service.inbox.describe(), sort_keys=True)}")
        print(render_summary(records))
    return 0


def cmd_replay(args) -> int:
    resolved = _pipeline_for(args.workload, args)
    if resolved is None:
        return 2
    pipeline, _environment = resolved
    trace = load_trace(args.trace)
    expect_plan = None
    if trace.plan.method in ANALYSIS_FREE_METHODS:
        expect_plan = pipeline.make_plan(InstrumentationMethod(trace.plan.method))
    report = pipeline.reproduce_from_trace(trace, expect_plan=expect_plan)
    outcome = report.outcome
    print(f"replay of {args.trace} ({trace.scenario}, method={trace.plan.method}): "
          f"{outcome.summary()}")
    print(f"  stats={json.dumps(outcome.stats(), sort_keys=True)}")
    if outcome.reproduced:
        print(f"  crash={outcome.crash_site.function}:{outcome.crash_site.line}")
        shown = dict(sorted(outcome.found_input.items())[:12])
        print(f"  input ({len(outcome.found_input)} vars, first 12): {shown}")
    return 0 if outcome.reproduced else 1


def _print_ingests(results) -> None:
    for result in results:
        print(f"ingested {result.trace_id} cluster={result.cluster_id} "
              f"duplicate={result.duplicate} program={result.program} "
              f"crash={result.crash_site or 'none'} bits={result.bits}")


def cmd_inbox(args) -> int:
    service = ReproService(args.root, config=build_config(args))
    ingested = []
    for path in args.ingest or ():
        ingested.append(service.ingest_file(path))
    if args.spool:
        ingested.extend(service.poll_spool(args.spool))
    _print_ingests(ingested)
    for path, reason in sorted(service.inbox.rejected.items()):
        print(f"rejected {path}: {reason}", file=sys.stderr)
    for cluster in sorted(service.inbox.clusters.values(),
                          key=lambda c: c.arrival):
        print(f"cluster {cluster.cluster_id} [{cluster.status}] "
              f"bug={cluster.bug_key} program={cluster.program} "
              f"crash={cluster.crash_site or 'none'} "
              f"members={len(cluster.members)} bits={cluster.bits}")
    print(f"inbox={json.dumps(service.inbox.describe(), sort_keys=True)}")
    return 0


def cmd_serve(args) -> int:
    """Run the concurrent trace-upload server until SIGTERM/SIGINT."""

    import os
    import signal
    import threading

    from repro.service import FaultInjector, FaultSpec, UploadServer

    config = build_config(args)
    overrides = (("max_trace_bytes", "max_trace_bytes"),
                 ("queue_depth", "ingest_queue_depth"),
                 ("partitions", "spool_partitions"),
                 ("spool_writers", "spool_writers"),
                 ("read_timeout", "read_timeout_seconds"),
                 ("client_quota", "client_quota"),
                 ("search_deadline", "search_deadline_seconds"),
                 ("checkpoint_every", "checkpoint_every_runs"),
                 ("search_retries", "max_search_retries"),
                 ("preempt_after", "preempt_after_seconds"),
                 ("replan_after", "replan_after_reports"),
                 ("replan_seed", "replan_seed"))
    for arg_name, field_name in overrides:
        value = getattr(args, arg_name)
        if value is not None:
            setattr(config.service, field_name, value)
    if args.no_supervise:
        config.service.supervised = False
    faults = None
    if args.faults:
        faults = FaultInjector(FaultSpec.from_json(json.loads(args.faults)))

    server = UploadServer(args.root, config=config, host=args.host,
                          port=args.port, faults=faults)
    if args.port_file:
        # Atomic write: a watcher that sees the file sees the full port.
        tmp = args.port_file + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(str(server.port))
        os.replace(tmp, args.port_file)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    print(f"serving on {server.host}:{server.port} root={args.root} "
          f"recovered={len(server.recovered)}", flush=True)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        server.shutdown()  # graceful drain: queued uploads spool + ack first
    print(f"drained; "
          f"stats={json.dumps(server.service.stats().to_json(), sort_keys=True)}")
    return 0


def cmd_loadgen(args) -> int:
    """Ship a duplicate-heavy upload fleet at a running ``serve`` process."""

    from repro.experiments import net_exp
    from repro.service import FaultSpec, UploadClient

    port = args.port
    if args.port_file:
        with open(args.port_file) as handle:
            port = int(handle.read().strip())
    if port is None:
        print("loadgen needs --port or --port-file", file=sys.stderr)
        return 2
    fault_spec = None
    if args.faults:
        fault_spec = FaultSpec.from_json(json.loads(args.faults))

    payloads = net_exp.record_payloads(net_exp.FLEETS[args.fleet],
                                       build_config(args))
    summary = net_exp.run_fleet(args.host, port, payloads,
                                clients=args.clients, fault_spec=fault_spec,
                                seed=args.seed, timeout=args.timeout,
                                max_attempts=args.max_attempts,
                                poison=args.poison)
    receipts = summary.pop("receipts")

    lost = []
    if args.process:
        control = UploadClient(args.host, port, client_id="loadgen-control",
                               timeout=args.timeout)
        control.process()
        for _index, receipt in sorted(receipts.items()):
            body = control.report(receipt.trace_id)
            if body.get("status") != "done":
                lost.append(receipt.trace_id)
    summary["lost_reports"] = sorted(set(lost))
    summary["ok"] = bool(
        not summary["failed"] and not lost
        and summary["acked"] == summary["uploads"]
        and summary["poison_rejected"] == args.poison)
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
    return 0 if summary["ok"] else 1


def cmd_replan(args) -> int:
    """Revise instrumentation plans from a service root's fleet history.

    Offline counterpart of ``serve --replan-after``: fold the root's
    reproduced clusters into fleet observations, ask the seeded replanner
    for the next plan version of every observed program, and register the
    revisions in the plan ledger next to the spool.  Clients fetch the new
    versions through the server's ``plan`` op; traces recorded under older
    versions keep working (routed by fingerprint).
    """

    with ReproService(args.root, config=build_config(args)) as service:
        revisions = service.replan(seed=args.seed,
                                   max_drop_fraction=args.max_drop_fraction)
        ledger = service.plan_ledger
        if not ledger.programs:
            print("no reproduced clusters with stored traces; nothing to "
                  "replan")
            return 0
        for program in sorted(ledger.programs):
            entry = ledger.latest(program)
            if program in revisions:
                revision = entry.revision or {}
                print(f"{program}: v{entry.parent} -> v{entry.version} "
                      f"dropped={len(revision.get('dropped', ()))} "
                      f"added={len(revision.get('added', ()))} "
                      f"logged={len(entry.instrumented)} "
                      "predicted_overhead_delta="
                      f"{revision.get('predicted_overhead_delta_percent')}%")
            else:
                print(f"{program}: converged at v{entry.version} "
                      f"({len(entry.instrumented)} branches logged)")
        print(f"ledger={ledger.path}")
    return 0


def cmd_serve_batch(args) -> int:
    from repro.service import FaultInjector, FaultSpec

    config = build_config(args)
    overrides = (("search_deadline", "search_deadline_seconds"),
                 ("checkpoint_every", "checkpoint_every_runs"),
                 ("search_retries", "max_search_retries"),
                 ("preempt_after", "preempt_after_seconds"))
    for arg_name, field_name in overrides:
        value = getattr(args, arg_name, None)
        if value is not None:
            setattr(config.service, field_name, value)
    if args.no_supervise:
        config.service.supervised = False
    with ReproService(args.root, config=config) as service:
        if args.faults:
            injector = FaultInjector(FaultSpec.from_json(json.loads(args.faults)))
            service.search_faults = injector.spec
            service.search_fault_injector = injector
        resumable = service.resume_scan()
        if resumable:
            # Exactly-once across restarts: these clusters had a live search
            # when the previous process died; their checkpoints survive and
            # the supervisor resumes each from its last commit boundary.
            print(f"resuming {len(resumable)} in-flight searches")
        ingested = []
        if args.spool:
            ingested = service.poll_spool(args.spool)
        _print_ingests(ingested)
        for path, reason in sorted(service.inbox.rejected.items()):
            print(f"rejected {path}: {reason}", file=sys.stderr)
        reports = service.process(max_clusters=args.max_clusters)
        failed = 0
        for trace_id in sorted(reports):
            report = reports[trace_id]
            status = "reproduced" if report.reproduced else (
                "error" if report.error else "not reproduced")
            failed += 0 if report.reproduced else 1
            via = f" via={report.duplicate_of}" if report.duplicate_of else ""
            crash = (f"{report.crash_site[0]}:{report.crash_site[1]}"
                     if report.crash_site else "none")
            print(f"report {trace_id} [{status}] cluster={report.cluster_id} "
                  f"runs={report.runs} crash={crash}{via}")
        print(f"stats={json.dumps(service.stats().to_json(), sort_keys=True)}")
    return 0 if failed == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list recordable workload scenarios")

    record = sub.add_parser("record", help="run a workload and write a trace file")
    record.add_argument("--workload", required=True)
    record.add_argument("--out", required=True)
    record.add_argument("--method", default=InstrumentationMethod.ALL_BRANCHES.value,
                        choices=[m.value for m in InstrumentationMethod])
    record.add_argument("--backend", default="vm", choices=["interp", "vm"])
    record.add_argument("--keep-input-data", action="store_true",
                        help="store real input bytes instead of the privacy scaffold")

    info = sub.add_parser("info", help="print a trace file's summary")
    info.add_argument("--trace", required=True)
    info.add_argument("--telemetry", action="store_true",
                      help="print per-section byte sizes and CRC as JSON lines")

    replay = sub.add_parser("replay", help="reproduce a crash from a trace file")
    replay.add_argument("--trace", required=True)
    replay.add_argument("--workload", required=True,
                        help="the developer's copy of the program")
    replay.add_argument("--backend", default="vm", choices=["interp", "vm"])
    replay.add_argument("--workers", type=int, default=1)
    replay.add_argument("--worker-kind", default="thread",
                        choices=["thread", "process"])
    replay.add_argument("--no-warm-start", action="store_true")
    replay.add_argument("--max-runs", type=int, default=3000)
    replay.add_argument("--max-seconds", type=float, default=120.0)

    inbox = sub.add_parser("inbox", help="ingest traces into a deduplicating inbox")
    inbox.add_argument("--root", required=True,
                       help="inbox state directory (created if missing)")
    inbox.add_argument("--spool", default=None,
                       help="poll this directory for *.trace spool files")
    inbox.add_argument("--ingest", nargs="*", default=None, metavar="TRACE",
                       help="trace files to ingest directly")

    serve = sub.add_parser(
        "serve-batch",
        help="ingest a spool and run one replay search per deduped cluster")
    serve.add_argument("--root", required=True)
    serve.add_argument("--spool", default=None)
    serve.add_argument("--backend", default="vm", choices=["interp", "vm"])
    serve.add_argument("--workers", type=int, default=1,
                       help="replay-engine workers inside one search")
    serve.add_argument("--worker-kind", default="thread",
                       choices=["thread", "process"])
    serve.add_argument("--no-warm-start", action="store_true")
    serve.add_argument("--service-workers", type=int, default=1,
                       help="cluster-level process pool size (1 = inline)")
    serve.add_argument("--max-clusters", type=int, default=None)
    serve.add_argument("--max-runs", type=int, default=3000)
    serve.add_argument("--max-seconds", type=float, default=120.0)
    serve.add_argument("--search-deadline", type=float, default=None,
                       help="per-search wall-clock deadline, seconds "
                            "(0 = none)")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       help="checkpoint each search every N committed runs "
                            "(0 = only on preemption)")
    serve.add_argument("--search-retries", type=int, default=None,
                       help="restarts from checkpoint after a worker crash "
                            "before the cluster is quarantined")
    serve.add_argument("--preempt-after", type=float, default=None,
                       help="preempt a search after this many seconds when "
                            "smaller searches wait (0 = never)")
    serve.add_argument("--no-supervise", action="store_true",
                       help="run searches inline without the supervisor")
    serve.add_argument("--faults", default=None, metavar="JSON",
                       help="FaultSpec JSON for chaos testing search workers, "
                            'e.g. \'{"worker_kill_rate": 0.1}\'')
    serve.add_argument("--telemetry", action="store_true",
                       help="record metrics/spans during the batch")
    serve.add_argument("--profile-vm", action="store_true",
                       help="with --telemetry: per-opcode VM dispatch counts")
    serve.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                       help="with --telemetry: append snapshots to this "
                            "JSON-lines sink")

    serve_net = sub.add_parser(
        "serve",
        help="run the concurrent trace-upload server (TCP, length-prefixed "
             "frames) until SIGTERM/SIGINT, then drain gracefully")
    serve_net.add_argument("--root", required=True,
                           help="service state directory (spool + journal + "
                                "inbox, created if missing)")
    serve_net.add_argument("--host", default="127.0.0.1")
    serve_net.add_argument("--port", type=int, default=0,
                           help="TCP port (0 = pick an ephemeral port)")
    serve_net.add_argument("--port-file", default=None, metavar="PATH",
                           help="atomically write the bound port here once "
                                "listening (scripted-startup handshake)")
    serve_net.add_argument("--backend", default="vm",
                           choices=["interp", "vm"])
    serve_net.add_argument("--max-trace-bytes", type=int, default=None,
                           help="reject uploads larger than this many bytes")
    serve_net.add_argument("--queue-depth", type=int, default=None,
                           help="bounded ingest queue depth (backpressure)")
    serve_net.add_argument("--partitions", type=int, default=None,
                           help="spool shard count (cluster-key hash)")
    serve_net.add_argument("--spool-writers", type=int, default=None)
    serve_net.add_argument("--read-timeout", type=float, default=None,
                           help="per-read socket timeout, seconds "
                                "(slow-loris shedding)")
    serve_net.add_argument("--client-quota", type=int, default=None,
                           help="max distinct uploads per client per run "
                                "(0 = unlimited)")
    serve_net.add_argument("--search-deadline", type=float, default=None,
                           help="per-search wall-clock deadline, seconds "
                                "(0 = none)")
    serve_net.add_argument("--checkpoint-every", type=int, default=None,
                           help="checkpoint each search every N committed "
                                "runs (0 = only on preemption)")
    serve_net.add_argument("--search-retries", type=int, default=None,
                           help="restarts from checkpoint after a worker "
                                "crash before the cluster is quarantined")
    serve_net.add_argument("--preempt-after", type=float, default=None,
                           help="preempt a search after this many seconds "
                                "when smaller searches wait (0 = never)")
    serve_net.add_argument("--no-supervise", action="store_true",
                           help="run searches inline without the supervisor")
    serve_net.add_argument("--replan-after", type=int, default=None,
                           help="revise instrumentation plans after this "
                                "many fanned-out reports (0 = never; see "
                                "the `replan` subcommand)")
    serve_net.add_argument("--replan-seed", type=int, default=None,
                           help="replanner tie-break seed")
    serve_net.add_argument("--faults", default=None, metavar="JSON",
                           help="FaultSpec JSON for chaos testing, e.g. "
                                '\'{"spool_fail_rate": 0.2, '
                                '"worker_kill_rate": 0.1, '
                                '"crash_points": ["net.after_commit"]}\'')
    serve_net.add_argument("--telemetry", action="store_true")
    serve_net.add_argument("--profile-vm", action="store_true")
    serve_net.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                           help="with --telemetry: append snapshots to this "
                                "JSON-lines sink on every process request")

    loadgen = sub.add_parser(
        "loadgen",
        help="ship a duplicate-heavy upload fleet at a running `serve` "
             "process; exits 0 only if nothing was lost")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=None)
    loadgen.add_argument("--port-file", default=None, metavar="PATH",
                         help="read the server port from this file")
    loadgen.add_argument("--fleet", default="smoke",
                         choices=["smoke", "full"])
    loadgen.add_argument("--clients", type=int, default=3,
                         help="concurrent uploading client threads")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--timeout", type=float, default=1.0)
    loadgen.add_argument("--max-attempts", type=int, default=12)
    loadgen.add_argument("--poison", type=int, default=0,
                         help="extra garbage uploads that must be rejected")
    loadgen.add_argument("--faults", default=None, metavar="JSON",
                         help="client-side FaultSpec JSON (drop/truncate/"
                              "corrupt/slow rates)")
    loadgen.add_argument("--process", action="store_true",
                         help="after uploading, trigger replay searches and "
                              "verify every acked upload has a report")
    loadgen.add_argument("--backend", default="vm", choices=["interp", "vm"])
    loadgen.add_argument("--out", default=None, metavar="PATH",
                         help="also write the JSON summary here")

    stats = sub.add_parser(
        "stats", help="render telemetry from a service root or a JSONL sink")
    stats.add_argument("--root", default=None,
                       help="service/inbox state directory")
    stats.add_argument("--jsonl", default=None, metavar="PATH",
                       help="render a telemetry JSON-lines sink file instead")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")
    stats.add_argument("--opcodes", nargs="?", const=12, type=int,
                       default=None, metavar="N",
                       help="render the top-N VM dispatch table (vm.opcode.* "
                            "counters, logged-vs-bare branch split) instead "
                            "of the full summary (default N=12)")
    stats.add_argument("--suggest-fusions", default=None, metavar="WORKLOAD",
                       help="re-derive superinstruction candidates for this "
                            "workload's program from the recorded vm.opcode.* "
                            "profile (repro.vm.synth.select_fusions)")

    replan = sub.add_parser(
        "replan",
        help="revise instrumentation plans from a service root's reproduced "
             "clusters; registers new versions in the plan ledger")
    replan.add_argument("--root", required=True,
                        help="service/inbox state directory")
    replan.add_argument("--backend", default="vm", choices=["interp", "vm"])
    replan.add_argument("--seed", type=int, default=None,
                        help="replanner tie-break seed (default: config's "
                             "service.replan_seed)")
    replan.add_argument("--max-drop-fraction", type=float, default=None,
                        help="fraction of the droppable branch pool removed "
                             "per generation (default: config's "
                             "service.replan_max_drop_fraction)")

    args = parser.parse_args(argv)
    if args.command == "stats" and not (args.root or args.jsonl):
        parser.error("stats needs --root or --jsonl")
    handler = {"list": cmd_list, "record": cmd_record,
               "info": cmd_info, "replay": cmd_replay,
               "inbox": cmd_inbox, "serve-batch": cmd_serve_batch,
               "serve": cmd_serve, "loadgen": cmd_loadgen,
               "stats": cmd_stats, "replan": cmd_replan}[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Output piped into a pager/grep that closed early (`... | head`):
        # the consumer got what it wanted, not an error on our side.
        return 0
    except TraceError as exc:
        # Bad trace files and mismatched binaries are user-facing outcomes,
        # not tool bugs: report a one-line reason and a distinct exit code
        # instead of a traceback (TraceFormatError covers corruption and
        # version skew, TraceFingerprintMismatch unmatched binaries).
        reason = " ".join(str(exc).split())
        print(f"error: {type(exc).__name__}: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
