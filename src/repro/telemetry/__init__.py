"""``repro.telemetry`` — unified metrics, spans and VM profiling.

The observability layer the rest of the system records into:

* :class:`~repro.telemetry.registry.MetricsRegistry` — process- or
  item-local counters, gauges and fixed-bucket histograms whose snapshots
  are picklable and merge *exactly* (bucket-wise integer addition), so
  worker-merged telemetry is byte-identical to a serial run's;
* :func:`~repro.telemetry.spans.span` — nested wall-clock intervals
  (``with span("replay.search", cluster=...)``) recorded into the active
  registry's timeline;
* :mod:`~repro.telemetry.runtime` — the thread-local / process-global
  resolution of "the active registry", which compiles to shared no-op
  singletons when the ``telemetry`` section of
  :class:`~repro.service.config.ReproConfig` is disabled (the default);
* :func:`write_jsonl` — the JSON-lines sink, one metric object per line,
  consumed by ``python -m repro stats`` and the CI telemetry smoke job.

Determinism contract: telemetry never feeds back into execution, and every
metric that is not a pure function of the committed work (wall clocks,
per-process cache warmth, speculation counts) is flagged ``timing=True``
and excluded from :meth:`RegistrySnapshot.deterministic` — the subset the
differential tests compare byte-for-byte across worker counts and kinds.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.registry import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    SECONDS_BUCKETS,
    SpanRecord,
    histogram_quantile,
)
from repro.telemetry.runtime import (
    NULL_REGISTRY,
    NullRegistry,
    active,
    disable,
    enable,
    enabled,
    scoped,
)
from repro.telemetry.spans import span

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "RegistrySnapshot",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "active",
    "disable",
    "enable",
    "enabled",
    "histogram_quantile",
    "read_jsonl",
    "render_summary",
    "scoped",
    "span",
    "write_jsonl",
]


def write_jsonl(path: str, snapshot: RegistrySnapshot,
                context: Optional[Dict[str, object]] = None,
                append: bool = True) -> str:
    """Append *snapshot* to the JSON-lines sink at *path*; returns the path."""

    lines = snapshot.jsonl_lines(context)
    with open(path, "a" if append else "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return path


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a JSON-lines sink file back into a list of metric records."""

    import json

    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_summary(records: List[Dict[str, object]]) -> str:
    """A human-readable rendering of JSON-lines records (the CLI face)."""

    lines: List[str] = []
    counters = [r for r in records if r.get("type") == "counter"]
    gauges = [r for r in records if r.get("type") == "gauge"]
    histograms = [r for r in records if r.get("type") == "histogram"]
    spans = [r for r in records if r.get("type") == "span"]
    if counters:
        lines.append("counters:")
        for record in sorted(counters, key=lambda r: r["name"]):
            lines.append(f"  {record['name']} = {record['value']}")
    if gauges:
        lines.append("gauges:")
        for record in sorted(gauges, key=lambda r: r["name"]):
            lines.append(f"  {record['name']} = {record['value']}")
    if histograms:
        lines.append("histograms:")
        for record in sorted(histograms, key=lambda r: r["name"]):
            count = record["count"]
            total = record["sum"]
            mean = (total / count) if count else 0.0
            lines.append(f"  {record['name']}: count={count} sum={total:.6g} "
                         f"mean={mean:.6g}")
    if spans:
        lines.append("spans:")
        for record in spans:
            indent = "  " * (1 + int(record.get("depth", 0)))
            attrs = record.get("attrs") or {}
            suffix = (" " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                      if attrs else "")
            lines.append(f"{indent}{record['name']} "
                         f"{record['seconds']:.6f}s{suffix}")
    return "\n".join(lines) if lines else "(no telemetry records)"
