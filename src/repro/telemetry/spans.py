"""Lightweight spans: named, attributed wall-clock intervals that nest.

``with span("replay.search", cluster=cid): ...`` records one
:class:`~repro.telemetry.registry.SpanRecord` into the active registry when
the block exits.  Nesting depth is tracked per thread, so a timeline renders
as an indented tree without the records needing parent pointers.  Spans are
always wall-clock data — they never appear in deterministic snapshots.

When telemetry is disabled the context manager is a shared no-op singleton:
no clock is read and nothing allocates.
"""

from __future__ import annotations

import threading
import time

from repro.telemetry import runtime
from repro.telemetry.registry import SpanRecord

__all__ = ["span"]

_DEPTH_TLS = threading.local()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "registry", "start", "depth")

    def __init__(self, name: str, attrs, registry) -> None:
        self.name = name
        self.attrs = attrs
        self.registry = registry

    def __enter__(self) -> "_Span":
        self.depth = getattr(_DEPTH_TLS, "depth", 0)
        _DEPTH_TLS.depth = self.depth + 1
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        seconds = time.perf_counter() - self.start
        _DEPTH_TLS.depth = self.depth
        self.registry.record_span(SpanRecord(
            name=self.name, depth=self.depth, start=self.start,
            seconds=seconds, attrs=tuple(sorted(self.attrs.items()))))


def span(name: str, **attrs):
    """A context manager timing one named interval into the active registry."""

    registry = runtime.active()
    if not registry.enabled:
        return _NULL_SPAN
    return _Span(name, attrs, registry)
