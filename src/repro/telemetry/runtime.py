"""The telemetry runtime: which registry (if any) is currently active.

Instrumented code never holds a registry directly — it asks
:func:`active` for the current one and records into whatever comes back.
Three levels resolve, cheapest first:

* a **thread-local scope** installed by :func:`scoped` (the replay engine
  wraps each pending-item evaluation in one, so a run's VM/solver metrics
  land in that item's private registry and travel home in its evaluation);
* the **process-global registry** installed by :func:`enable`;
* the :data:`NULL_REGISTRY` when telemetry is off — its instruments are
  shared no-op singletons, so disabled instrumentation costs one attribute
  lookup and an empty method call at each site (and the VM dispatch loop
  costs literally nothing: profiling swaps in a different loop *function*
  instead of testing a flag per instruction).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

from repro.telemetry.registry import MetricsRegistry, RegistrySnapshot

__all__ = [
    "NULL_REGISTRY",
    "NullRegistry",
    "active",
    "disable",
    "enable",
    "enabled",
    "scoped",
]


class _NullInstrument:
    """Absorbs every instrument method; one shared instance per kind."""

    __slots__ = ()
    timing = False
    value = 0
    count = 0
    sum = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-telemetry registry: every instrument is a no-op."""

    enabled = False

    def counter(self, name: str, timing: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, timing: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None,
                  timing: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def record_span(self, span) -> None:
        pass

    def snapshot(self) -> RegistrySnapshot:
        return RegistrySnapshot()

    def merge_snapshot(self, snapshot: RegistrySnapshot) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_TLS = threading.local()
_GLOBAL: object = NULL_REGISTRY
_GLOBAL_LOCK = threading.Lock()


def active():
    """The registry instrumentation should record into right now."""

    scope = getattr(_TLS, "registry", None)
    if scope is not None:
        return scope
    return _GLOBAL


def enabled() -> bool:
    """Is any real registry active on this thread?"""

    return active().enabled


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-global registry."""

    global _GLOBAL
    with _GLOBAL_LOCK:
        if registry is None:
            registry = MetricsRegistry()
        _GLOBAL = registry
    return registry


def disable() -> None:
    """Drop the process-global registry; telemetry reverts to no-ops."""

    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = NULL_REGISTRY


@contextlib.contextmanager
def scoped(registry) -> Iterator[object]:
    """Route this thread's telemetry into *registry* while the scope is open.

    Scopes nest (the previous registry is restored on exit), and a scope
    shadows the process-global registry — that is what isolates one pending
    item's metrics from another's when replay worker threads run
    concurrently.
    """

    previous = getattr(_TLS, "registry", None)
    _TLS.registry = registry
    try:
        yield registry
    finally:
        _TLS.registry = previous
