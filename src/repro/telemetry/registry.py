"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` is a process-local (or item-local) collection of
named instruments.  Three design rules keep it compatible with the engine's
determinism contract:

* **Fixed bucket boundaries.**  A histogram's buckets are chosen at creation
  and never adapt to the data, so merging two histograms is exact bucket-wise
  integer addition — a worker-merged histogram is *byte-identical* to the one
  a serial run would have produced, not approximately equal.
* **Deterministic vs. volatile metrics.**  Wall-clock observations (and
  counters that depend on per-process state, e.g. compile-cache warmth) are
  created with ``timing=True`` and excluded from
  :meth:`RegistrySnapshot.deterministic`; everything else must be a pure
  function of the committed work, so deterministic snapshots compare equal
  across worker counts and kinds.
* **Plain picklable snapshots.**  :class:`RegistrySnapshot` carries nothing
  but dicts, tuples and numbers; it crosses process boundaries in the replay
  engine's ``_ItemEvaluation`` return path and merges into the parent
  registry in serial commit order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "histogram_quantile",
]


def histogram_quantile(snapshot: "RegistrySnapshot", name: str,
                       q: float) -> Optional[float]:
    """The *q*-quantile of a snapshot histogram, as a bucket upper bound.

    Fixed-boundary histograms answer quantile queries conservatively: the
    returned value is the upper boundary of the first bucket whose
    cumulative count reaches ``q * count`` — an upper bound on the true
    quantile, exact to one bucket's width.  Returns ``None`` when the
    histogram is absent or empty, and ``float("inf")`` when the quantile
    lands in the overflow bucket (beyond the last boundary).

    This is how the load-generator bench reads p99 ingest latency from the
    ``service.ingest_latency`` histogram.
    """

    entry = snapshot.histograms.get(name)
    if entry is None:
        return None
    buckets, counts, count, _total = entry
    if not count:
        return None
    threshold = q * count
    cumulative = 0
    for boundary, bucket_count in zip(buckets, counts):
        cumulative += bucket_count
        if cumulative >= threshold:
            return boundary
    return float("inf")

#: Default boundaries for wall-clock histograms (seconds).  Upper-inclusive;
#: one overflow bucket catches everything beyond the last boundary.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default boundaries for integer-count histograms (solver nodes, consumed
#: bits, constraint-set sizes...).
COUNT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "timing", "value")

    def __init__(self, name: str, timing: bool = False) -> None:
        self.name = name
        self.timing = timing
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A named last-written value (queue depths, pool sizes)."""

    __slots__ = ("name", "timing", "value")

    def __init__(self, name: str, timing: bool = False) -> None:
        self.name = name
        self.timing = timing
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram; merges are exact bucket-wise addition.

    ``buckets`` are upper-inclusive boundaries; observations beyond the last
    boundary land in the overflow bucket, so ``counts`` has
    ``len(buckets) + 1`` cells.  Deterministic histograms should observe
    integers only (integer sums merge exactly in any order); wall-clock
    histograms must be created with ``timing=True``.
    """

    __slots__ = ("name", "timing", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, buckets: Tuple[float, ...],
                 timing: bool = False) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty "
                             f"bucket boundaries, got {buckets!r}")
        self.name = name
        self.timing = timing
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        index = 0
        for boundary in self.buckets:
            if value <= boundary:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value


@dataclass
class SpanRecord:
    """One completed span of the timeline (always volatile/timing data)."""

    name: str
    depth: int
    start: float
    seconds: float
    attrs: Tuple[Tuple[str, object], ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {"name": self.name, "depth": self.depth,
                "start": round(self.start, 6),
                "seconds": round(self.seconds, 6),
                "attrs": dict(self.attrs)}


@dataclass
class RegistrySnapshot:
    """A picklable, mergeable point-in-time copy of a registry.

    ``histograms`` maps name -> ``(buckets, counts, count, sum)``;
    ``timing_names`` lists the metrics excluded from deterministic
    comparison.  Merging requires identical bucket boundaries per name —
    guaranteed because boundaries are fixed at creation.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, object] = field(default_factory=dict)
    histograms: Dict[str, Tuple[Tuple[float, ...], Tuple[int, ...], int, object]] = \
        field(default_factory=dict)
    timing_names: Tuple[str, ...] = ()
    spans: Tuple[SpanRecord, ...] = ()

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Fold *other* into this snapshot in place (and return self)."""

        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, (buckets, counts, count, total) in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = (buckets, counts, count, total)
                continue
            if mine[0] != buckets:
                raise ValueError(
                    f"histogram {name!r} bucket boundaries differ between "
                    "merged snapshots — boundaries must be fixed at creation")
            merged_counts = tuple(a + b for a, b in zip(mine[1], counts))
            self.histograms[name] = (buckets, merged_counts,
                                     mine[2] + count, mine[3] + total)
        timing = set(self.timing_names) | set(other.timing_names)
        self.timing_names = tuple(sorted(timing))
        self.spans = tuple(self.spans) + tuple(other.spans)
        return self

    def deterministic(self) -> "RegistrySnapshot":
        """The snapshot minus every timing/volatile metric and all spans.

        This is the subset the determinism tests compare byte-for-byte
        across worker counts and kinds.
        """

        volatile = set(self.timing_names)
        return RegistrySnapshot(
            counters={k: v for k, v in self.counters.items()
                      if k not in volatile},
            gauges={k: v for k, v in self.gauges.items() if k not in volatile},
            histograms={k: v for k, v in self.histograms.items()
                        if k not in volatile},
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {"buckets": list(buckets), "counts": list(counts),
                       "count": count, "sum": total}
                for name, (buckets, counts, count, total)
                in self.histograms.items()
            },
            "timing_names": list(self.timing_names),
            "spans": [span.to_json() for span in self.spans],
        }

    def canonical_bytes(self) -> bytes:
        """Sorted-key JSON encoding: the byte-identity comparison form."""

        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def jsonl_lines(self, context: Optional[Dict[str, object]] = None
                    ) -> List[str]:
        """One JSON object per metric — the JSON-lines sink encoding."""

        base = dict(context or {})
        lines: List[str] = []

        def emit(payload: Dict[str, object]) -> None:
            record = dict(base)
            record.update(payload)
            lines.append(json.dumps(record, sort_keys=True))

        for name in sorted(self.counters):
            emit({"type": "counter", "name": name,
                  "value": self.counters[name]})
        for name in sorted(self.gauges):
            emit({"type": "gauge", "name": name, "value": self.gauges[name]})
        for name in sorted(self.histograms):
            buckets, counts, count, total = self.histograms[name]
            emit({"type": "histogram", "name": name,
                  "buckets": list(buckets), "counts": list(counts),
                  "count": count, "sum": total})
        for span in self.spans:
            emit(dict({"type": "span"}, **span.to_json()))
        return lines


class MetricsRegistry:
    """A live collection of named instruments (get-or-create semantics)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.spans: List[SpanRecord] = []

    def counter(self, name: str, timing: bool = False) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, timing=timing)
        return instrument

    def gauge(self, name: str, timing: bool = False) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, timing=timing)
        return instrument

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = COUNT_BUCKETS,
                  timing: bool = False) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets, timing=timing)
        return instrument

    def record_span(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def snapshot(self) -> RegistrySnapshot:
        timing = sorted(
            [c.name for c in self._counters.values() if c.timing]
            + [g.name for g in self._gauges.values() if g.timing]
            + [h.name for h in self._histograms.values() if h.timing])
        return RegistrySnapshot(
            counters={c.name: c.value for c in self._counters.values()},
            gauges={g.name: g.value for g in self._gauges.values()},
            histograms={h.name: (h.buckets, tuple(h.counts), h.count, h.sum)
                        for h in self._histograms.values()},
            timing_names=tuple(timing),
            spans=tuple(self.spans),
        )

    def merge_snapshot(self, snapshot: RegistrySnapshot) -> None:
        """Fold a (possibly cross-process) snapshot into the live registry."""

        timing = set(snapshot.timing_names)
        for name, value in snapshot.counters.items():
            self.counter(name, timing=name in timing).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name, timing=name in timing).set(value)
        for name, (buckets, counts, count, total) in snapshot.histograms.items():
            histogram = self.histogram(name, buckets=buckets,
                                       timing=name in timing)
            if histogram.buckets != tuple(buckets):
                raise ValueError(
                    f"histogram {name!r} bucket boundaries differ between "
                    "registry and merged snapshot")
            for index, value in enumerate(counts):
                histogram.counts[index] += value
            histogram.count += count
            histogram.sum += total
        self.spans.extend(snapshot.spans)
