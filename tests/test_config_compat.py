"""Config compatibility: ReproConfig subsumes the legacy config objects.

Every pre-service construction pattern the repo uses —
``PipelineConfig(...)`` in tests, examples, experiments and the trace tool,
``ExecutionConfig(...)`` in the backend benchmarks and parity tests — must
round-trip through the :class:`~repro.service.config.ReproConfig` shims
losslessly, and a pipeline built from the lifted config must behave
identically to one built from the original.  ``from_dict``/``to_dict``
round-trip exactly and unknown keys are rejected loudly.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    ConcolicBudget,
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
    ReproConfig,
)
from repro.core.config import coerce_pipeline_config
from repro.interp.inputs import ExecutionMode
from repro.interp.interpreter import ExecutionConfig
from repro.service.config import (
    ExecutionSection,
    InstrumentationSection,
    ReplaySection,
    ServiceSection,
)
from repro.workloads import userver
from repro.workloads.coreutils import mkdir

#: Every distinct ``PipelineConfig(...)`` construction pattern found in the
#: repo's tests, examples, experiments and tools before the service layer.
LEGACY_PIPELINE_PATTERNS = [
    ("default", lambda: PipelineConfig()),
    ("backend-vm", lambda: PipelineConfig(backend="vm")),
    ("budgets", lambda: PipelineConfig(
        concolic_budget=ConcolicBudget(max_iterations=24, max_seconds=6),
        replay_budget=ReplayBudget(max_runs=150, max_seconds=10))),
    ("library", lambda: PipelineConfig(
        library_functions=set(userver.LIBRARY_FUNCTIONS))),
    ("library-no-skip", lambda: PipelineConfig(
        library_functions={"helper"}, static_skips_library=False)),
    ("backend-library", lambda: PipelineConfig(
        backend="vm", library_functions=set(userver.LIBRARY_FUNCTIONS))),
    ("workers", lambda: PipelineConfig(
        backend="vm", replay_workers=3, replay_worker_kind="process",
        replay_warm_start=False)),
    ("vm-knobs-off", lambda: PipelineConfig(
        backend="vm", specialize_plans=False, register_allocation=False)),
    ("search-order", lambda: PipelineConfig(
        replay_search_order="bfs", record_max_steps=123_456,
        log_syscalls=False)),
    ("concolic-only", lambda: PipelineConfig(
        concolic_budget=ConcolicBudget(max_iterations=4, max_seconds=8))),
]

LEGACY_EXECUTION_PATTERNS = [
    ("default", lambda: ExecutionConfig()),
    ("vm", lambda: ExecutionConfig(backend="vm")),
    ("mode-steps", lambda: ExecutionConfig(mode=ExecutionMode.REPLAY,
                                           max_steps=5_000, backend="vm")),
    ("depth", lambda: ExecutionConfig(max_call_depth=64, backend="vm")),
    ("knobs", lambda: ExecutionConfig(mode=ExecutionMode.RECORD, backend="vm",
                                      specialize_plans=False,
                                      register_allocation=False,
                                      fuse_compare_branch=False)),
]


class TestLegacyRoundTrip:
    @pytest.mark.parametrize("name,make",
                             LEGACY_PIPELINE_PATTERNS,
                             ids=[p[0] for p in LEGACY_PIPELINE_PATTERNS])
    def test_pipeline_config_round_trips(self, name, make):
        original = make()
        lifted = ReproConfig.from_legacy(original)
        assert lifted.to_pipeline_config() == original

    @pytest.mark.parametrize("name,make",
                             LEGACY_EXECUTION_PATTERNS,
                             ids=[p[0] for p in LEGACY_EXECUTION_PATTERNS])
    def test_execution_config_round_trips(self, name, make):
        original = make()
        lifted = ReproConfig.from_legacy(original)
        rebuilt = lifted.execution_config(
            mode=original.mode,
            syscall_result_provider=original.syscall_result_provider)
        assert rebuilt == original

    def test_from_legacy_rejects_other_types(self):
        with pytest.raises(TypeError):
            ReproConfig.from_legacy({"backend": "vm"})

    def test_coerce_accepts_both_and_rejects_garbage(self):
        legacy = PipelineConfig(backend="vm")
        assert coerce_pipeline_config(legacy) is legacy
        layered = ReproConfig(execution=ExecutionSection(backend="vm"))
        assert coerce_pipeline_config(layered) == legacy
        assert coerce_pipeline_config(None) == PipelineConfig()
        with pytest.raises(TypeError):
            coerce_pipeline_config(42)


class TestBehaviourDifferential:
    """The same pipeline run under the legacy config and its lifted twin."""

    @staticmethod
    def _end_to_end(config):
        pipeline = Pipeline.from_source(mkdir.SOURCE, name="mkdir",
                                        config=config)
        environment = mkdir.bug_scenario()
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        report = pipeline.reproduce(recording)
        outcome = report.outcome
        return (
            list(recording.bitvector),
            recording.execution.steps,
            (recording.crash_site.function, recording.crash_site.line),
            outcome.reproduced,
            outcome.runs,
            tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
                  for r in outcome.run_records),
            tuple(sorted(outcome.found_input.items())),
        )

    @pytest.mark.parametrize("backend", ["interp", "vm"])
    def test_identical_pipeline_behaviour(self, backend):
        legacy = PipelineConfig(
            backend=backend,
            replay_budget=ReplayBudget(max_runs=400, max_seconds=30))
        lifted = ReproConfig.from_legacy(legacy)
        baseline = self._end_to_end(legacy)
        assert self._end_to_end(lifted) == baseline
        assert baseline[3] is True  # reproduced


class TestDictRoundTrip:
    def test_default_round_trips(self):
        config = ReproConfig()
        assert ReproConfig.from_dict(config.to_dict()) == config

    def test_customised_round_trips_through_json(self):
        config = ReproConfig(
            execution=ExecutionSection(backend="vm", record_max_steps=1_000,
                                       fuse_compare_branch=False),
            instrumentation=InstrumentationSection(
                log_syscalls=False, library_functions={"b", "a"},
                concolic_budget=ConcolicBudget(max_iterations=3,
                                               max_seconds=1.5, label="LC")),
            replay=ReplaySection(budget=ReplayBudget(max_runs=7),
                                 workers=4, worker_kind="process",
                                 warm_start=False),
            service=ServiceSection(workers=2, priority="arrival",
                                   persist=False),
        )
        wire = json.loads(json.dumps(config.to_dict()))
        assert ReproConfig.from_dict(wire) == config

    def test_partial_dict_keeps_defaults(self):
        config = ReproConfig.from_dict({"execution": {"backend": "vm"}})
        assert config.execution.backend == "vm"
        assert config.replay == ReplaySection()
        assert config.service == ServiceSection()

    @pytest.mark.parametrize("payload,needle", [
        ({"exeggution": {}}, "exeggution"),
        ({"execution": {"backnd": "vm"}}, "backnd"),
        ({"replay": {"budget": {"max_rnus": 3}}}, "max_rnus"),
        ({"instrumentation": {"concolic_budget": {"depth": 2}}}, "depth"),
        ({"service": {"pool": 3}}, "pool"),
    ], ids=["section", "execution-key", "budget-key", "concolic-key",
            "service-key"])
    def test_unknown_keys_rejected(self, payload, needle):
        with pytest.raises(ValueError, match=needle):
            ReproConfig.from_dict(payload)

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            ReproConfig.from_dict({"service": {"priority": "biggest-first"}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            ReproConfig.from_dict({"execution": ["vm"]})
