"""Tests for instrumentation methods, the branch logger and the overhead model."""

import pytest

from repro.analysis.dataflow import StaticAnalysisResult
from repro.concolic.labels import BranchLabels
from repro.instrument.logger import (
    LOG_BUFFER_BYTES,
    BitvectorLog,
    BranchLogger,
    SyscallResultLog,
)
from repro.instrument.methods import InstrumentationMethod, build_plan, select_branches
from repro.instrument.overhead import OverheadModel, OverheadReport
from repro.instrument.plan import InstrumentationPlan
from repro.interp.tracer import BranchEvent
from repro.lang.cfg import BranchLocation
from repro.osmodel.syscalls import SyscallEvent, SyscallKind


def loc(number, fn="main"):
    return BranchLocation(function=fn, node_id=number, line=number, kind="if")


ALL = {loc(i) for i in range(1, 11)}


def make_labels(symbolic, concrete):
    labels = BranchLabels.for_program(ALL)
    for location in symbolic:
        labels.observe(location, symbolic=True)
    for location in concrete:
        labels.observe(location, symbolic=False)
    return labels


def make_static(symbolic):
    return StaticAnalysisResult(symbolic_branches=set(symbolic),
                                concrete_branches=ALL - set(symbolic))


class TestMethodSelection:
    # Dynamic saw 1,2 symbolic and 3,4 concrete; 5..10 unvisited.
    labels = make_labels({loc(1), loc(2)}, {loc(3), loc(4)})
    # Static over-approximates: everything the dynamic saw as symbolic, plus
    # branch 3 (incorrectly) and branches 5,6 among the unvisited ones.
    static = make_static({loc(1), loc(2), loc(3), loc(5), loc(6)})

    def test_all_branches(self):
        assert select_branches(InstrumentationMethod.ALL_BRANCHES, ALL) == ALL

    def test_none(self):
        assert select_branches(InstrumentationMethod.NONE, ALL) == set()

    def test_dynamic_only_symbolic_labels(self):
        selected = select_branches(InstrumentationMethod.DYNAMIC, ALL, self.labels)
        assert selected == {loc(1), loc(2)}

    def test_static_selects_its_symbolic_set(self):
        selected = select_branches(InstrumentationMethod.STATIC, ALL,
                                   static_result=self.static)
        assert selected == {loc(1), loc(2), loc(3), loc(5), loc(6)}

    def test_dynamic_plus_static_override_rule(self):
        selected = select_branches(InstrumentationMethod.DYNAMIC_PLUS_STATIC, ALL,
                                   self.labels, self.static)
        # 1,2 from dynamic; 3 excluded because dynamic saw it concrete;
        # 5,6 from static because dynamic never visited them.
        assert selected == {loc(1), loc(2), loc(5), loc(6)}

    def test_static_union_ablation_keeps_everything(self):
        selected = select_branches(InstrumentationMethod.STATIC_UNION, ALL,
                                   self.labels, self.static)
        assert selected == {loc(1), loc(2), loc(3), loc(5), loc(6)}

    def test_missing_analysis_raises(self):
        with pytest.raises(ValueError):
            select_branches(InstrumentationMethod.DYNAMIC, ALL)
        with pytest.raises(ValueError):
            select_branches(InstrumentationMethod.STATIC, ALL)

    def test_build_plan_metadata(self):
        plan = build_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, ALL,
                          self.labels, self.static)
        assert plan.method == "dynamic+static"
        assert plan.instrumented_count() == 4
        assert "dynamic_labels" in plan.analysis_metadata
        assert 0 < plan.fraction_instrumented() < 1

    def test_ordering_of_overhead_across_methods(self):
        sizes = {method: len(select_branches(method, ALL, self.labels, self.static))
                 for method in InstrumentationMethod.paper_methods()}
        assert (sizes[InstrumentationMethod.DYNAMIC]
                <= sizes[InstrumentationMethod.DYNAMIC_PLUS_STATIC]
                <= sizes[InstrumentationMethod.STATIC]
                <= sizes[InstrumentationMethod.ALL_BRANCHES])


class TestPlan:
    def test_without_syscall_logging_copy(self):
        plan = InstrumentationPlan.from_sets("static", {loc(1)}, ALL)
        no_sys = plan.without_syscall_logging()
        assert plan.log_syscalls and not no_sys.log_syscalls
        assert no_sys.instrumented == plan.instrumented

    def test_instrumented_in_function_filter(self):
        plan = InstrumentationPlan.from_sets("x", {loc(1), loc(2, "lib")}, ALL)
        assert plan.instrumented_in(["lib"]) == {loc(2, "lib")}


class TestBitvectorLog:
    def test_append_and_roundtrip(self):
        log = BitvectorLog()
        bits = [True, False, True, True, False, False, True, False, True]
        for bit in bits:
            log.append(bit)
        assert list(log) == bits
        assert log.storage_bytes() == 2
        packed = log.to_bytes()
        assert len(packed) == 2
        rebuilt = BitvectorLog.from_bits(bits)
        assert rebuilt.to_bytes() == packed

    def test_flush_accounting(self):
        log = BitvectorLog()
        for _ in range(LOG_BUFFER_BYTES * 8 * 2):
            log.append(True)
        assert log.flushes == 2


class TestSyscallLog:
    def test_only_selected_kinds_recorded(self):
        log = SyscallResultLog()
        log.record(SyscallEvent(kind=SyscallKind.READ, result=42))
        log.record(SyscallEvent(kind=SyscallKind.WRITE, result=10))
        log.record(SyscallEvent(kind=SyscallKind.SELECT, result=5))
        assert log.of_kind(SyscallKind.READ) == [42]
        assert log.of_kind(SyscallKind.WRITE) == []
        assert log.count() == 2
        assert log.storage_bytes() == 8

    def test_cursor_consumes_in_order(self):
        log = SyscallResultLog()
        for value in (3, 7, 9):
            log.record(SyscallEvent(kind=SyscallKind.RECV, result=value))
        cursor = log.cursor()
        assert [cursor.next_result(SyscallKind.RECV) for _ in range(4)] == [3, 7, 9, None]
        assert cursor.remaining(SyscallKind.RECV) == 0


class TestBranchLogger:
    def make_event(self, location, taken):
        return BranchEvent(location=location, taken=taken, symbolic=False, condition=None)

    def test_only_instrumented_branches_logged(self):
        plan = InstrumentationPlan.from_sets("test", {loc(1)}, ALL)
        logger = BranchLogger(plan)
        logger.on_branch(self.make_event(loc(1), True))
        logger.on_branch(self.make_event(loc(2), False))
        logger.on_branch(self.make_event(loc(1), False))
        assert logger.total_branch_executions == 3
        assert logger.instrumented_executions == 2
        assert list(logger.bitvector) == [True, False]

    def test_syscall_logging_respects_plan(self):
        plan = InstrumentationPlan.from_sets("test", set(), ALL, log_syscalls=False)
        logger = BranchLogger(plan)
        logger.on_syscall(SyscallEvent(kind=SyscallKind.READ, result=4))
        assert logger.syscall_log.count() == 0
        assert logger.storage_bytes() == 0


class TestOverheadModel:
    def test_no_instrumentation_means_no_overhead(self):
        report = OverheadModel().report("none", base_units=1000,
                                        instrumented_branch_executions=0)
        assert report.cpu_time_percent == pytest.approx(100.0)
        assert report.overhead_percent == pytest.approx(0.0)

    def test_tight_loop_overhead_matches_paper_magnitude(self):
        # ~13 base units per iteration against 17 charged per logged branch
        # puts the all-branches overhead in the paper's 100%+ ballpark.
        iterations = 1000
        report = OverheadModel().report("all branches", base_units=13 * iterations,
                                        instrumented_branch_executions=iterations)
        assert 80.0 <= report.overhead_percent <= 160.0

    def test_overhead_monotone_in_logged_branches(self):
        model = OverheadModel()
        low = model.report("dynamic", 10_000, 100)
        high = model.report("static", 10_000, 1_000)
        assert high.cpu_time_percent > low.cpu_time_percent

    def test_syscall_logging_cost_is_marginal(self):
        model = OverheadModel()
        without = model.report("dynamic", 100_000, 2_000, logged_syscall_results=0)
        with_sys = model.report("dynamic", 100_000, 2_000, logged_syscall_results=20)
        delta = with_sys.cpu_time_percent - without.cpu_time_percent
        assert 0 < delta < 2.0

    def test_nanosecond_estimate(self):
        report = OverheadModel().report("static", 100, 10)
        assert report.estimated_instrumentation_nanoseconds == pytest.approx(30.0)

    def test_describe_round_trips_key_fields(self):
        report = OverheadModel().report("static", 100, 10, storage_bytes=5)
        info = report.describe()
        assert info["method"] == "static"
        assert info["storage_bytes"] == 5
