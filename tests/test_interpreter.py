"""Tests for the MiniC interpreter: semantics, crashes and tracing."""

import pytest

from repro.interp.inputs import ExecutionMode
from tests.conftest import run_source


class TestArithmeticAndControlFlow:
    def test_return_value_becomes_exit_code(self):
        result, _, _ = run_source("int main() { return 7; }", ["p"])
        assert result.exit_code == 7

    def test_arithmetic_expressions(self):
        src = "int main() { return (2 + 3) * 4 - 10 / 2; }"
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 15

    def test_c_division_truncates_toward_zero(self):
        src = "int main() { return 0 - (7 / 2); }"
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == -3

    def test_while_loop(self):
        src = """
        int main() {
            int i = 0;
            int total = 0;
            while (i < 5) { total = total + i; i = i + 1; }
            return total;
        }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 10

    def test_for_loop_with_break_and_continue(self):
        src = """
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 100; i = i + 1) {
                if (i == 5) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 4  # 1 + 3

    def test_nested_function_calls_and_recursion(self):
        src = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(5); }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 120

    def test_ternary_and_logical_operators(self):
        src = "int main() { int x = 4; return (x > 2 && x < 10) ? 1 : 0; }"
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 1

    def test_global_variables(self):
        src = """
        int COUNTER;
        int bump() { COUNTER = COUNTER + 1; return COUNTER; }
        int main() { bump(); bump(); return COUNTER; }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 2


class TestArraysAndPointers:
    def test_array_read_write(self):
        src = """
        int main() {
            int data[4];
            data[0] = 3; data[1] = 5;
            return data[0] + data[1];
        }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 8

    def test_pointer_arithmetic_and_dereference(self):
        src = """
        int main() {
            char buf[8];
            char *p = buf;
            *p = 'a';
            *(p + 1) = 'b';
            return buf[1];
        }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == ord("b")

    def test_string_literals_and_strlen(self):
        src = 'int main() { return strlen("hello"); }'
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 5

    def test_argv_access(self):
        src = "int main(int argc, char **argv) { return argv[1][0]; }"
        result, _, _ = run_source(src, ["p", "Zebra"])
        assert result.exit_code == ord("Z")

    def test_out_of_bounds_read_crashes(self):
        src = "int main() { int a[2]; return a[5]; }"
        result, _, _ = run_source(src, ["p"])
        assert result.crashed
        assert "out of bounds" in result.crash.message

    def test_null_dereference_crashes(self):
        src = "int main() { char *p = 0; return p[0]; }"
        result, _, _ = run_source(src, ["p"])
        assert result.crashed

    def test_division_by_zero_crashes(self):
        src = "int main(int argc, char **argv) { return 10 / (argc - 1); }"
        result, _, _ = run_source(src, ["p"])
        assert result.crashed

    def test_crash_site_identity(self):
        src = """
        int boom() { crash("here"); return 0; }
        int main() { boom(); return 0; }
        """
        result, _, _ = run_source(src, ["p"])
        assert result.crashed
        assert result.crash.function == "boom"


class TestLimitsAndOutput:
    def test_step_limit(self):
        src = "int main() { while (1) { } return 0; }"
        result, _, _ = run_source(src, ["p"], max_steps=500)
        assert result.step_limit_hit
        assert not result.crashed

    def test_printf_output(self):
        src = 'int main() { printf("x=%d s=%s c=%c\\n", 42, "ok", \'!\'); return 0; }'
        result, _, _ = run_source(src, ["p"])
        assert result.stdout == "x=42 s=ok c=!\n"

    def test_exit_builtin(self):
        src = 'int main() { exit(3); return 0; }'
        result, _, _ = run_source(src, ["p"])
        assert result.exit_code == 3


class TestBranchTracing:
    LOOP_SRC = """
    int main(int argc, char **argv) {
        int i;
        int hits = 0;
        for (i = 0; i < 4; i = i + 1) {
            if (argv[1][0] == 'x') { hits = hits + 1; }
        }
        return hits;
    }
    """

    def test_branch_counts(self):
        result, recorder, _ = run_source(self.LOOP_SRC, ["p", "x"])
        # for executes 5 times (4 true + 1 false), the if 4 times.
        assert result.branch_executions == 9
        assert recorder.total_branches == 9

    def test_symbolic_branches_only_in_analyze_mode(self):
        record_result, record_trace, _ = run_source(self.LOOP_SRC, ["p", "x"])
        analyze_result, analyze_trace, _ = run_source(
            self.LOOP_SRC, ["p", "x"], mode=ExecutionMode.ANALYZE)
        assert record_result.symbolic_branch_executions == 0
        assert analyze_result.symbolic_branch_executions == 4
        assert len(analyze_trace.symbolic_locations()) == 1

    def test_branch_locations_are_consistent_across_runs(self):
        # Node ids are parse-specific, but (function, line, kind) is stable.
        _, trace_a, _ = run_source(self.LOOP_SRC, ["p", "x"])
        _, trace_b, _ = run_source(self.LOOP_SRC, ["p", "y"])
        key = lambda locs: [(b.function, b.line, b.kind) for b in locs]  # noqa: E731
        assert key(trace_a.visited_locations()) == key(trace_b.visited_locations())

    def test_no_mixed_locations_in_simple_program(self):
        _, trace, _ = run_source(self.LOOP_SRC, ["p", "x"], mode=ExecutionMode.ANALYZE)
        assert trace.mixed_locations() == []


class TestInputBinding:
    def test_argv_bytes_bound_in_analyze_mode(self):
        src = "int main(int argc, char **argv) { return argv[1][0]; }"
        _, _, interp = run_source(src, ["p", "hi"], mode=ExecutionMode.ANALYZE)
        assert "arg1_0" in interp.binder.variables
        assert interp.binder.concrete_values["arg1_0"] == ord("h")

    def test_stdin_bytes_bound(self):
        src = "int main() { return getchar(); }"
        _, _, interp = run_source(src, ["p"], stdin=b"Q", mode=ExecutionMode.ANALYZE)
        assert interp.binder.concrete_values.get("stdin_0") == ord("Q")

    def test_record_mode_binds_nothing(self):
        src = "int main(int argc, char **argv) { return argv[1][0]; }"
        _, _, interp = run_source(src, ["p", "hi"], mode=ExecutionMode.RECORD)
        assert interp.binder.variables == {}

    def test_file_reads_are_bound(self):
        src = """
        int main() {
            char buf[16];
            int fd = open("/f.txt", 0);
            int n = read(fd, buf, 4);
            return buf[0];
        }
        """
        _, _, interp = run_source(src, ["p"], files={"/f.txt": b"data"},
                                  mode=ExecutionMode.ANALYZE)
        assert any(name.startswith("file__f.txt") for name in interp.binder.variables)
