"""Tests for the replay engine: pending list, run hooks and reproduction."""

import pytest

from repro import InstrumentationMethod, Pipeline, PipelineConfig, ReplayBudget
from repro.environment import simple_environment
from repro.instrument.logger import BitvectorLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.interpreter import AbortRun
from repro.interp.tracer import BranchEvent
from repro.lang.cfg import BranchLocation
from repro.replay.hooks import ReplayRunHooks
from repro.replay.pending import PendingItem, PendingList
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.expr import sym_bin, sym_const, sym_var
from tests.conftest import GUARD_SOURCE


def loc(number, fn="main"):
    return BranchLocation(function=fn, node_id=number, line=number, kind="if")


def constraint_set(*values):
    cs = ConstraintSet()
    for index, value in enumerate(values):
        cs.add_expr(sym_bin("==", sym_var(f"v{index}"), sym_const(value)))
    return cs


class TestPendingList:
    def test_dfs_order(self):
        pending = PendingList(order="dfs")
        pending.push(PendingItem(constraint_set(1)))
        pending.push(PendingItem(constraint_set(2)))
        assert pending.pop().constraints[0].expr == sym_bin("==", sym_var("v0"), sym_const(2))

    def test_bfs_order(self):
        pending = PendingList(order="bfs")
        pending.push(PendingItem(constraint_set(1)))
        pending.push(PendingItem(constraint_set(2)))
        assert pending.pop().constraints[0].expr == sym_bin("==", sym_var("v0"), sym_const(1))

    def test_duplicates_rejected(self):
        pending = PendingList()
        assert pending.push(PendingItem(constraint_set(1)))
        assert not pending.push(PendingItem(constraint_set(1)))
        assert pending.duplicates == 1

    def test_max_size_enforced(self):
        pending = PendingList(max_size=2)
        for value in range(5):
            pending.push(PendingItem(constraint_set(value)))
        assert len(pending) == 2
        assert pending.dropped == 3

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            PendingList(order="random")

    def test_pop_empty_returns_none(self):
        assert PendingList().pop() is None


class TestReplayRunHooks:
    def setup_method(self):
        self.instrumented = loc(1)
        self.uninstrumented = loc(2)
        self.concrete = loc(3)
        self.plan = InstrumentationPlan.from_sets(
            "test", {self.instrumented, self.concrete},
            {self.instrumented, self.uninstrumented, self.concrete})

    def make_hooks(self, bits):
        return ReplayRunHooks(self.plan, BitvectorLog.from_bits(bits))

    def symbolic_event(self, location, taken):
        condition = sym_bin("==", sym_var("x"), sym_const(1))
        if not taken:
            condition = condition.negated()
        return BranchEvent(location=location, taken=taken, symbolic=True,
                           condition=condition)

    def concrete_event(self, location, taken):
        return BranchEvent(location=location, taken=taken, symbolic=False, condition=None)

    def test_case1_unlogged_symbolic_pushes_alternative(self):
        hooks = self.make_hooks([True])
        hooks.on_branch(self.symbolic_event(self.uninstrumented, taken=True))
        assert len(hooks.run_constraints) == 1
        assert len(hooks.alternatives) == 1
        assert hooks.consumed_bits() == 0

    def test_case2a_logged_symbolic_match(self):
        hooks = self.make_hooks([True])
        hooks.on_branch(self.symbolic_event(self.instrumented, taken=True))
        assert hooks.consumed_bits() == 1
        assert len(hooks.run_constraints) == 1
        assert hooks.deviation is None

    def test_case2b_logged_symbolic_mismatch_aborts(self):
        hooks = self.make_hooks([False])
        with pytest.raises(AbortRun):
            hooks.on_branch(self.symbolic_event(self.instrumented, taken=True))
        assert hooks.deviation.kind == "symbolic-mismatch"
        assert len(hooks.alternatives) == 1

    def test_case3a_logged_concrete_match(self):
        hooks = self.make_hooks([False])
        hooks.on_branch(self.concrete_event(self.concrete, taken=False))
        assert hooks.deviation is None

    def test_case3b_logged_concrete_mismatch_aborts(self):
        hooks = self.make_hooks([True])
        with pytest.raises(AbortRun):
            hooks.on_branch(self.concrete_event(self.concrete, taken=False))
        assert hooks.deviation.kind == "concrete-mismatch"

    def test_case4_unlogged_concrete_is_ignored(self):
        hooks = self.make_hooks([])
        hooks.on_branch(self.concrete_event(self.uninstrumented, taken=True))
        assert hooks.consumed_bits() == 0
        assert hooks.alternatives == []

    def test_log_exhausted_aborts(self):
        hooks = self.make_hooks([])
        with pytest.raises(AbortRun):
            hooks.on_branch(self.concrete_event(self.concrete, taken=True))
        assert hooks.deviation.kind == "log-exhausted"

    def test_not_logged_statistics(self):
        hooks = self.make_hooks([True])
        hooks.on_branch(self.symbolic_event(self.uninstrumented, taken=True))
        hooks.on_branch(self.symbolic_event(self.uninstrumented, taken=True))
        summary = hooks.not_logged_summary()
        assert summary == {"locations": 1, "executions": 2}


class TestReproduction:
    def make_pipeline(self):
        return Pipeline.from_source(GUARD_SOURCE, name="guard")

    def record(self, pipeline, method, env):
        analysis = pipeline.analyze(env)
        plan = pipeline.make_plan(method, analysis)
        return pipeline.record(plan, env)

    def test_reproduces_crash_with_all_branches(self):
        pipeline = self.make_pipeline()
        env = simple_environment(["guard", "crab"], name="crash")
        recording = self.record(pipeline, InstrumentationMethod.ALL_BRANCHES, env)
        assert recording.crashed
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=100, max_seconds=10))
        assert report.reproduced
        assert report.outcome.crash_site.function == "check"

    def test_reproduced_input_satisfies_the_bug_condition(self):
        pipeline = self.make_pipeline()
        env = simple_environment(["guard", "crash"], name="crash")
        recording = self.record(pipeline, InstrumentationMethod.STATIC, env)
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=100, max_seconds=10))
        assert report.reproduced
        found = report.outcome.found_input
        assert found["arg1_0"] == ord("c")
        assert found["arg1_1"] == ord("r")
        assert found["arg1_2"] == ord("a")

    def test_non_crashing_recording_is_not_reproduced(self):
        pipeline = self.make_pipeline()
        env = simple_environment(["guard", "calm"], name="benign")
        recording = self.record(pipeline, InstrumentationMethod.ALL_BRANCHES, env)
        assert not recording.crashed
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=20, max_seconds=5))
        assert not report.reproduced

    def test_budget_exhaustion_reports_timeout(self):
        pipeline = self.make_pipeline()
        env = simple_environment(["guard", "crash"], name="crash")
        plan = pipeline.make_plan(InstrumentationMethod.NONE)
        recording = pipeline.record(plan, env)
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=3, max_seconds=5))
        assert not report.reproduced

    def test_bfs_search_order_also_reproduces(self):
        pipeline = self.make_pipeline()
        env = simple_environment(["guard", "crash"], name="crash")
        recording = self.record(pipeline, InstrumentationMethod.DYNAMIC_PLUS_STATIC, env)
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=200, max_seconds=10),
                                    search_order="bfs")
        assert report.reproduced
