"""Tests for the static analysis (points-to + dataflow)."""

import pytest

from repro.analysis.dataflow import StaticAnalyzer
from repro.analysis.pointsto import ARGV_OBJECT, PointsToAnalysis, qualify
from repro.lang.program import Program
from repro.workloads import fibonacci
from repro.workloads.coreutils import mkdir


def analyze(source, **kwargs):
    program = Program.from_source(source, name="t")
    return program, StaticAnalyzer(program, **kwargs).run()


def symbolic_lines(result, function=None):
    return {loc.line for loc in result.symbolic_branches
            if function is None or loc.function == function}


def concrete_lines(result, function=None):
    return {loc.line for loc in result.concrete_branches
            if function is None or loc.function == function}


class TestPointsTo:
    SOURCE = """
    char GLOBALBUF[32];
    int fill(char *dst) { dst[0] = 'x'; return 0; }
    int main(int argc, char **argv) {
        char local[8];
        char *p = local;
        char *q = p;
        char *g = GLOBALBUF;
        char *m = malloc(16);
        fill(q);
        return 0;
    }
    """

    def test_alias_chain(self):
        program = Program.from_source(self.SOURCE)
        result = PointsToAnalysis(program).run()
        p = result.pointees(qualify("main", "p"))
        q = result.pointees(qualify("main", "q"))
        assert p and p <= q or p == q
        assert result.may_alias(qualify("main", "p"), qualify("main", "q"))

    def test_parameter_binding(self):
        program = Program.from_source(self.SOURCE)
        result = PointsToAnalysis(program).run()
        dst = result.pointees(qualify("fill", "dst"))
        local = result.pointees(qualify("main", "local"))
        assert local & dst

    def test_globals_and_malloc_objects(self):
        program = Program.from_source(self.SOURCE)
        result = PointsToAnalysis(program).run()
        assert any("global" in obj for obj in result.pointees(qualify("main", "g")))
        assert any("malloc" in obj for obj in result.pointees(qualify("main", "m")))

    def test_argv_points_to_summary_object(self):
        program = Program.from_source(self.SOURCE)
        result = PointsToAnalysis(program).run()
        assert ARGV_OBJECT in result.pointees(qualify("main", "argv"))


class TestDataflowBasics:
    def test_argv_dependent_branch_is_symbolic(self):
        src = """
        int main(int argc, char **argv) {
            if (argv[1][0] == 'x') { return 1; }
            if (5 > 3) { return 2; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 3 in symbolic_lines(result)
        assert 4 in concrete_lines(result)

    def test_propagation_through_assignment(self):
        src = """
        int main(int argc, char **argv) {
            char c = argv[1][0];
            char d = c;
            if (d == 'z') { return 1; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 5 in symbolic_lines(result)

    def test_input_builtin_is_a_source(self):
        src = """
        int main() {
            int c = getchar();
            if (c == 10) { return 1; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 4 in symbolic_lines(result)

    def test_constant_loop_is_concrete(self):
        src = """
        int main() {
            int i; int t = 0;
            for (i = 0; i < 8; i = i + 1) { t = t + i; }
            if (t > 100) { return 1; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert result.symbolic_branches == set()

    def test_symbolic_return_value_propagates_interprocedurally(self):
        src = """
        int pick(char *s) { return s[0]; }
        int main(int argc, char **argv) {
            int v = pick(argv[1]);
            if (v == 7) { return 1; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 5 in symbolic_lines(result, "main")
        assert "pick" in result.functions_returning_symbolic

    def test_symbolic_parameter_propagates_into_callee(self):
        src = """
        int check(int v) {
            if (v > 10) { return 1; }
            return 0;
        }
        int main(int argc, char **argv) {
            return check(argv[1][0]);
        }
        """
        _, result = analyze(src)
        assert 3 in symbolic_lines(result, "check")

    def test_globals_propagate_across_functions(self):
        src = """
        int FLAG;
        int set_flag(char *s) { FLAG = s[0]; return 0; }
        int use_flag() {
            if (FLAG == 1) { return 1; }
            return 0;
        }
        int main(int argc, char **argv) {
            set_flag(argv[1]);
            return use_flag();
        }
        """
        _, result = analyze(src)
        assert 5 in symbolic_lines(result, "use_flag")

    def test_buffer_filled_by_read_is_symbolic(self):
        src = """
        int main() {
            char buf[16];
            int fd = open("/f", 0);
            int n = read(fd, buf, 8);
            if (buf[0] == 'a') { return 1; }
            if (n < 0) { return 2; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 6 in symbolic_lines(result)
        assert 7 in symbolic_lines(result)

    def test_strcpy_propagates_through_memory(self):
        src = """
        int main(int argc, char **argv) {
            char copy[64];
            strcpy(copy, argv[1]);
            if (copy[2] == 'k') { return 1; }
            return 0;
        }
        """
        _, result = analyze(src)
        assert 5 in symbolic_lines(result)


class TestConservativeness:
    def test_static_superset_of_truth_on_listing1(self):
        # Every truly symbolic branch (the two option checks) must be included.
        _, result = analyze(fibonacci.SOURCE)
        main_symbolic = symbolic_lines(result, "main")
        assert {14, 16} <= main_symbolic
        # The fibonacci recursion guard only depends on constants.
        assert concrete_lines(result, "fibonacci") == {5}

    def test_mkdir_mode_branches_are_symbolic(self):
        _, result = analyze(mkdir.SOURCE)
        assert len(symbolic_lines(result, "parse_mode")) >= 2

    def test_skip_functions_are_all_symbolic(self):
        src = """
        int libhelper(int x) {
            if (x > 0) { return 1; }
            if (x < -5) { return 2; }
            return 0;
        }
        int main(int argc, char **argv) {
            if (libhelper(3) == 1) { return 1; }
            return 0;
        }
        """
        _, result = analyze(src, skip_functions={"libhelper"})
        assert len(symbolic_lines(result, "libhelper")) == 2
        assert "libhelper" in result.skipped_functions

    def test_summary_mentions_counts(self):
        _, result = analyze(fibonacci.SOURCE)
        assert "symbolic" in result.summary()
        assert result.passes >= 1
