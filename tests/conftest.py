"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ConcolicBudget, Pipeline, PipelineConfig, ReplayBudget
from repro.environment import simple_environment
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig, Interpreter
from repro.interp.tracer import TraceRecorder
from repro.lang.program import Program
from repro.osmodel.kernel import Kernel, KernelConfig

# A small but representative program: symbolic branches (argv dependent),
# concrete branches (loop over a constant), a helper function and a crash
# reachable only under a specific argument.
GUARD_SOURCE = r"""
int check(char *arg) {
    int n = strlen(arg);
    if (n > 3) {
        if (arg[0] == 'c') {
            if (arg[1] == 'r') {
                if (arg[2] == 'a') {
                    crash("guarded crash");
                }
            }
        }
    }
    return 0;
}

int busywork(int rounds) {
    int total = 0;
    int i;
    for (i = 0; i < rounds; i = i + 1) {
        total = total + i;
    }
    return total;
}

int main(int argc, char **argv) {
    int i;
    busywork(10);
    for (i = 1; i < argc; i = i + 1) {
        check(argv[i]);
    }
    return 0;
}
"""


@pytest.fixture
def guard_program() -> Program:
    return Program.from_source(GUARD_SOURCE, name="guard")


@pytest.fixture
def guard_pipeline() -> Pipeline:
    config = PipelineConfig(concolic_budget=ConcolicBudget(max_iterations=24, max_seconds=5),
                            replay_budget=ReplayBudget(max_runs=100, max_seconds=10))
    return Pipeline.from_source(GUARD_SOURCE, name="guard", config=config)


@pytest.fixture
def crash_env():
    return simple_environment(["guard", "crash"], name="crash-env")


@pytest.fixture
def benign_env():
    return simple_environment(["guard", "hello"], name="benign-env")


def run_source(source: str, argv, stdin: bytes = b"", mode: ExecutionMode = ExecutionMode.RECORD,
               files=None, requests=None, max_steps: int = 2_000_000):
    """Helper used across tests: run a MiniC source once and return
    (ExecutionResult, TraceRecorder, Interpreter)."""

    program = Program.from_source(source)
    env = simple_environment(argv, stdin=stdin, files=files, requests=requests)
    recorder = TraceRecorder()
    interpreter = Interpreter(program, kernel=env.make_kernel(), hooks=recorder,
                              binder=InputBinder(mode=mode),
                              config=ExecutionConfig(mode=mode, max_steps=max_steps))
    result = interpreter.run(argv)
    return result, recorder, interpreter
