"""Tests for the uServer and diff workloads (§5.3, §5.4)."""

import pytest

from repro import (
    ConcolicBudget,
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
)
from repro.interp.inputs import ExecutionMode
from repro.workloads import diffutil, httpgen, userver
from tests.conftest import run_source


class TestHttpGen:
    def test_get_request_shape(self):
        data = httpgen.get_request("/x", cookie="sid=1")
        assert data.startswith(b"GET /x HTTP/1.1\r\n")
        assert b"Cookie: sid=1\r\n" in data
        assert data.endswith(b"\r\n\r\n")

    def test_post_request_has_content_length(self):
        data = httpgen.post_request("/submit", body=b"abcde")
        assert b"Content-Length: 5" in data
        assert data.endswith(b"abcde")

    def test_uniform_and_mixed_workloads(self):
        assert len(httpgen.uniform_workload(7)) == 7
        mixed = httpgen.mixed_workload(10)
        assert any(request.startswith(b"POST") for request in mixed)
        assert any(request.startswith(b"HEAD") for request in mixed)

    @pytest.mark.parametrize("number", httpgen.ALL_SCENARIOS)
    def test_all_scenarios_render(self, number):
        requests = httpgen.scenario_requests(number)
        assert requests and all(isinstance(r, bytes) for r in requests)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            httpgen.scenario_requests(9)


def run_userver(requests, mode=ExecutionMode.RECORD):
    return run_source(userver.SOURCE, ["userver"], requests=requests, mode=mode)


class TestUServerBehaviour:
    def test_serves_get_request(self):
        result, _, interp = run_userver([httpgen.get_request("/index.html")])
        responses = interp.kernel.net.responses()
        assert any(b"200 OK" in data for data in responses.values())
        assert "served=1" in result.stdout

    def test_missing_page_gets_404(self):
        result, _, interp = run_userver([httpgen.get_request("/missing")])
        assert any(b"404" in data for data in interp.kernel.net.responses().values())

    def test_bad_method_gets_400(self):
        _, _, interp = run_userver([httpgen.bad_request()])
        assert any(b"400" in data for data in interp.kernel.net.responses().values())

    def test_post_without_length_gets_411(self):
        raw = b"POST /x HTTP/1.1\r\nHost: h\r\n\r\n"
        _, _, interp = run_userver([raw])
        assert any(b"411" in data for data in interp.kernel.net.responses().values())

    def test_cookie_gets_set_cookie_response(self):
        _, _, interp = run_userver([httpgen.get_request("/", cookie="sid=9")])
        assert any(b"Set-Cookie" in data for data in interp.kernel.net.responses().values())

    def test_traversal_rejected(self):
        _, _, interp = run_userver([httpgen.get_request("/../etc/passwd")])
        assert any(b"400" in data for data in interp.kernel.net.responses().values())

    def test_crashes_after_workload(self):
        result, _, _ = run_userver([httpgen.get_request("/")])
        assert result.crashed
        assert result.crash.function == "main"

    def test_branch_behavior_mostly_concrete(self):
        """Figure 3's shape: symbolic executions are a small minority and most
        branch executions happen in the library helpers."""

        result, trace, _ = run_userver(httpgen.mixed_workload(6),
                                       mode=ExecutionMode.ANALYZE)
        assert result.branch_executions > 0
        symbolic_fraction = (result.symbolic_branch_executions
                             / result.branch_executions)
        assert symbolic_fraction < 0.35
        library_executions = sum(
            count for location, count in trace.executions.items()
            if location.function in userver.LIBRARY_FUNCTIONS)
        assert library_executions / result.branch_executions > 0.5


class TestDiffBehaviour:
    def test_identical_files(self):
        env = diffutil.identical_scenario()
        result, _, _ = run_source(diffutil.SOURCE, env.argv,
                                  files=env.make_kernel().fs.snapshot())
        assert "files are identical" in result.stdout

    def test_single_change_detected(self):
        env = diffutil.experiment_1()
        result, _, _ = run_source(diffutil.SOURCE, env.argv,
                                  files=env.make_kernel().fs.snapshot())
        assert "1 difference(s)" in result.stdout
        assert "< charlie" in result.stdout
        assert "> charly" in result.stdout

    def test_insertion_and_deletion_resync(self):
        env = diffutil.experiment_2()
        result, _, _ = run_source(diffutil.SOURCE, env.argv,
                                  files=env.make_kernel().fs.snapshot())
        assert "> 2.5" in result.stdout

    def test_missing_file_exits(self):
        result, _, _ = run_source(diffutil.SOURCE, ["diff", "/a", "/b"])
        assert result.exit_code == 2

    def test_diff_is_input_intensive(self):
        """A large share of diff's branch *executions* depend on file contents
        (the per-character copy and compare loops)."""

        env = diffutil.experiment_1()
        result, trace, _ = run_source(diffutil.SOURCE, env.argv,
                                      files=env.make_kernel().fs.snapshot(),
                                      mode=ExecutionMode.ANALYZE)
        assert len(trace.symbolic_locations()) >= 2
        ratio = result.symbolic_branch_executions / result.branch_executions
        assert ratio > 0.25


class TestServerReproductionShape:
    """A scaled-down version of the Table 3 / Table 6 comparison: the combined
    method reproduces the execution, while the dynamic method (with a tiny
    exploration budget and therefore low coverage) fails within the same
    replay budget."""

    def make_pipeline(self):
        config = PipelineConfig(library_functions=set(userver.LIBRARY_FUNCTIONS),
                                concolic_budget=ConcolicBudget(max_iterations=4,
                                                               max_seconds=4,
                                                               label="LC"),
                                replay_budget=ReplayBudget(max_runs=250, max_seconds=25))
        return Pipeline.from_source(userver.SOURCE, name="userver", config=config)

    @pytest.fixture(scope="class")
    def setup(self):
        pipeline = self.make_pipeline()
        # Analysis workload: plain GETs; the experiment uses a POST request,
        # whose Content-Length handling the dynamic analysis never saw.
        analysis_env = userver.saturation_workload(2)
        analysis = pipeline.analyze(analysis_env)
        experiment_env = userver.experiment(4)
        return pipeline, analysis, experiment_env

    def test_combined_reproduces_and_dynamic_struggles(self, setup):
        pipeline, analysis, env = setup
        dynamic_plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC, analysis)
        combined_plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, analysis)
        assert dynamic_plan.instrumented_count() < combined_plan.instrumented_count()

        stats = pipeline.branch_logging_stats(dynamic_plan, env)
        combined_stats = pipeline.branch_logging_stats(combined_plan, env)
        # The dynamic plan leaves more symbolic branch executions unlogged.
        assert stats.not_logged_executions >= combined_stats.not_logged_executions
        assert stats.not_logged_locations >= 1

        combined_recording = pipeline.record(combined_plan, env)
        assert combined_recording.crashed
        combined_report = pipeline.reproduce(combined_recording)
        assert combined_report.reproduced
        # The combined run leaves nothing unlogged, so its replay never has to
        # explore alternatives at unlogged symbolic branches.
        assert combined_report.outcome.symbolic_not_logged_locations == 0
