"""The supervised search fleet: crash recovery, deadlines, preemption.

The supervisor's contract extends the service's byte-identity guarantee to
a hostile world: replay workers are killed mid-search (deterministic
seeded fault streams), searches overrun deadlines, long searches are
preempted for short ones — and every cluster still ends in exactly one of
two loud states: the **identical** report the unsupervised path produces,
or a typed quarantine entry in the rejection ledger.  Silently wrong or
silently missing reports are the two outcomes these tests exist to forbid.
"""

from __future__ import annotations

import os

import pytest

from repro.replay import WorkerCrashError
from repro.service import (
    FaultInjector,
    FaultSpec,
    ReproConfig,
    ReproService,
    SearchDeadlineExceeded,
    SpoolJournal,
)

from test_service import record_trace_bytes, service_config


@pytest.fixture(scope="module")
def mkdir_bytes() -> bytes:
    return record_trace_bytes("mkdir-bug")


@pytest.fixture(scope="module")
def diff_bytes() -> bytes:
    return record_trace_bytes("diff-exp1")


def _report_identity(report):
    """The explored-set surface of one report (the byte-identity witness)."""

    return (report.found_input, report.runs, report.run_records,
            report.pending_stats, report.crash_site)


def _inline_reports(tmp_path, payloads):
    config = service_config()
    config.service.supervised = False
    with ReproService(str(tmp_path / "inline"), config=config) as service:
        for payload in payloads:
            service.ingest_bytes(payload)
        return service.process()


def _ingest(service, payloads):
    for payload in payloads:
        service.ingest_bytes(payload)


class TestSupervisedByteIdentity:
    def test_supervised_pool_matches_inline(self, tmp_path, mkdir_bytes,
                                            diff_bytes):
        base = _inline_reports(tmp_path, [mkdir_bytes, diff_bytes])
        config = service_config()
        config.service.workers = 2
        config.service.checkpoint_every_runs = 2
        with ReproService(str(tmp_path / "sup"), config=config) as service:
            _ingest(service, [mkdir_bytes, diff_bytes])
            reports = service.process()
            stats = service.stats()
        assert sorted(reports) == sorted(base)
        assert stats.searches_run == 2
        for trace_id in base:
            assert reports[trace_id].reproduced
            assert _report_identity(reports[trace_id]) == \
                _report_identity(base[trace_id])

    def test_worker_kills_lose_nothing(self, tmp_path, mkdir_bytes,
                                       diff_bytes):
        # The acceptance criterion of the fleet design: a seeded storm of
        # worker SIGKILLs, checkpoint-every-commit, bounded restarts —
        # every cluster converges to the identical report, zero lost.
        base = _inline_reports(tmp_path, [mkdir_bytes, diff_bytes])
        config = service_config()
        config.telemetry.enabled = True
        config.service.checkpoint_every_runs = 1
        config.service.max_search_retries = 50
        config.service.retry_backoff_seconds = 0.001
        with ReproService(str(tmp_path / "chaos"), config=config) as service:
            spec = FaultSpec(seed=7, worker_kill_rate=0.4)
            service.search_faults = spec
            service.search_fault_injector = FaultInjector(spec)
            _ingest(service, [mkdir_bytes, diff_bytes])
            reports = service.process()
            counters = service.telemetry().to_json()["counters"]
        assert counters["service.supervisor.restarts"] >= 1
        assert counters["service.supervisor.resumes"] >= 1
        for trace_id in base:
            assert reports[trace_id].reproduced, reports[trace_id].error
            assert _report_identity(reports[trace_id]) == \
                _report_identity(base[trace_id])
        # Nothing left behind: terminal clusters clear their checkpoints.
        ckdir = os.path.join(str(tmp_path / "chaos"), "checkpoints")
        assert [n for n in os.listdir(ckdir) if n.endswith(".ckpt")] == []

    def test_resumed_search_never_doublecounts(self, tmp_path, mkdir_bytes):
        # Telemetry across kill/resume equals the undisturbed run's
        # deterministic view: a preempted/killed attempt is a pause, not a
        # result, so final counters are recorded exactly once.
        config = service_config()
        config.telemetry.enabled = True
        with ReproService(str(tmp_path / "quiet"), config=config) as service:
            _ingest(service, [mkdir_bytes])
            service.process()
            want = {k: v for k, v in
                    service.telemetry().deterministic().to_json()
                    ["counters"].items() if k.startswith("replay.")}
        config2 = service_config()
        config2.telemetry.enabled = True
        config2.service.checkpoint_every_runs = 1
        config2.service.max_search_retries = 50
        config2.service.retry_backoff_seconds = 0.001
        with ReproService(str(tmp_path / "storm"), config=config2) as service:
            spec = FaultSpec(seed=11, worker_kill_rate=0.5)
            service.search_faults = spec
            service.search_fault_injector = FaultInjector(spec)
            _ingest(service, [mkdir_bytes])
            reports = service.process()
            got = {k: v for k, v in
                   service.telemetry().deterministic().to_json()
                   ["counters"].items() if k.startswith("replay.")}
        assert all(r.reproduced for r in reports.values())
        assert got == want


class TestQuarantine:
    def test_unrecoverable_cluster_is_quarantined(self, tmp_path,
                                                  mkdir_bytes):
        # Kill rate 1.0 with checkpointing disabled: no attempt can make
        # progress, retries exhaust, and the cluster lands in the
        # rejection ledger with a typed reason — never a wrong report.
        config = service_config()
        config.telemetry.enabled = True
        config.service.checkpoint_every_runs = 0
        config.service.max_search_retries = 2
        config.service.retry_backoff_seconds = 0.001
        with ReproService(str(tmp_path / "poison"), config=config) as service:
            spec = FaultSpec(seed=7, worker_kill_rate=1.0)
            service.search_faults = spec
            service.search_fault_injector = FaultInjector(spec)
            _ingest(service, [mkdir_bytes])
            reports = service.process()
            rejected = dict(service.inbox.rejected)
            counters = service.telemetry().to_json()["counters"]
        (report,) = reports.values()
        assert not report.reproduced
        assert "WorkerCrashError" in report.error
        assert "gave up after 3 attempt(s)" in report.error
        assert any(key.startswith("cluster:") and "WorkerCrashError" in reason
                   for key, reason in rejected.items()), rejected
        assert counters["service.supervisor.quarantined"] == 1
        assert counters["service.supervisor.restarts"] == 2

    def test_corrupt_checkpoint_quarantines_loudly(self, tmp_path,
                                                   mkdir_bytes):
        # A damaged snapshot for a pending cluster must surface as a typed
        # quarantine, not a silent fresh restart (which could mask a
        # torn/tampered store) and never a wrong report.
        config = service_config()
        config.service.checkpoint_every_runs = 1
        with ReproService(str(tmp_path / "torn"), config=config) as service:
            _ingest(service, [mkdir_bytes])
            (cluster_id,) = list(service.inbox.clusters)
            ckdir = os.path.join(service.inbox.root, "checkpoints")
            os.makedirs(ckdir, exist_ok=True)
            with open(os.path.join(ckdir, cluster_id + ".ckpt"), "wb") as fh:
                fh.write(b"REPROCKP" + b"\x00" * 64)
            reports = service.process()
            rejected = dict(service.inbox.rejected)
        (report,) = reports.values()
        assert not report.reproduced
        assert "CheckpointFormatError" in report.error
        assert f"cluster:{cluster_id}" in rejected


class TestDeadlines:
    def test_deadline_is_a_typed_outcome(self, tmp_path, mkdir_bytes):
        config = service_config()
        config.telemetry.enabled = True
        config.service.search_deadline_seconds = 1e-6
        with ReproService(str(tmp_path / "late"), config=config) as service:
            _ingest(service, [mkdir_bytes])
            reports = service.process()
            counters = service.telemetry().to_json()["counters"]
        (report,) = reports.values()
        assert not report.reproduced
        assert SearchDeadlineExceeded.__name__ in report.error
        assert counters["service.supervisor.deadline_exceeded"] == 1
        # Terminal: the failed cluster keeps no checkpoint to resume.
        ckdir = os.path.join(str(tmp_path / "late"), "checkpoints")
        assert [n for n in os.listdir(ckdir) if n.endswith(".ckpt")] == []

    def test_generous_deadline_changes_nothing(self, tmp_path, mkdir_bytes):
        base = _inline_reports(tmp_path, [mkdir_bytes])
        config = service_config()
        config.service.search_deadline_seconds = 300.0
        with ReproService(str(tmp_path / "ontime"), config=config) as service:
            _ingest(service, [mkdir_bytes])
            reports = service.process()
        for trace_id in base:
            assert _report_identity(reports[trace_id]) == \
                _report_identity(base[trace_id])


class TestPreemption:
    def test_waiting_small_search_preempts_running_big_one(
            self, tmp_path, mkdir_bytes, diff_bytes):
        base = _inline_reports(tmp_path, [diff_bytes, mkdir_bytes])
        # Arrival order launches the big diff search first with one slot;
        # the smaller waiting search preempts it almost immediately, and
        # the preempted search later resumes from its checkpoint — both
        # reports still byte-identical to the undisturbed runs.
        config = service_config()
        config.telemetry.enabled = True
        config.service.priority = "arrival"
        config.service.workers = 1
        config.service.preempt_after_seconds = 1e-4
        config.service.checkpoint_every_runs = 1
        with ReproService(str(tmp_path / "pre"), config=config) as service:
            _ingest(service, [diff_bytes, mkdir_bytes])
            reports = service.process()
            counters = service.telemetry().to_json()["counters"]
        assert counters["service.supervisor.preemptions"] >= 1
        assert counters["replay.checkpoint.resumes"] >= 1
        for trace_id in base:
            assert reports[trace_id].reproduced
            assert _report_identity(reports[trace_id]) == \
                _report_identity(base[trace_id])


class TestStartupReconciliation:
    def test_journal_tracks_inflight_searches(self, tmp_path):
        journal = SpoolJournal(str(tmp_path))
        journal.search_begin("c-one")
        journal.search_begin("c-two")
        journal.search_end("c-one")
        journal.close()
        assert SpoolJournal(str(tmp_path)).recover_searches() == ["c-two"]

    def test_resume_scan_keeps_pending_and_sweeps_stale(self, tmp_path,
                                                        mkdir_bytes):
        config = service_config()
        config.service.checkpoint_every_runs = 1
        with ReproService(str(tmp_path / "svc"), config=config) as service:
            _ingest(service, [mkdir_bytes])
            (cluster_id,) = list(service.inbox.clusters)
            ckdir = os.path.join(service.inbox.root, "checkpoints")
            os.makedirs(ckdir, exist_ok=True)
            live = os.path.join(ckdir, cluster_id + ".ckpt")
            open(live, "wb").close()
            for stale in ("gone.ckpt", "gone.heartbeat", "gone.7.1.result",
                          cluster_id + ".preempt"):
                open(os.path.join(ckdir, stale), "wb").close()
            resumable = service.resume_scan()
            assert resumable == [cluster_id]
            assert os.listdir(ckdir) == [cluster_id + ".ckpt"]


class TestWorkerCrashTyping:
    def test_worker_crash_error_is_exported(self):
        # Satellite contract: the engine-level typed error is reachable
        # from the replay package and is what quarantine reasons carry.
        assert issubclass(WorkerCrashError, RuntimeError)
