"""Tests for symbolic expressions, simplification and constraint sets."""

import pytest

from repro.symbolic.constraints import Constraint, ConstraintSet
from repro.symbolic.expr import (
    SymBinOp,
    SymConst,
    SymUnOp,
    SymVar,
    as_condition,
    sym_and,
    sym_bin,
    sym_const,
    sym_not,
    sym_var,
)
from repro.symbolic.simplify import evaluate, simplify, substitute, variables


X = sym_var("x")
Y = sym_var("y")


class TestExpressions:
    def test_constants_are_hashable_and_equal(self):
        assert sym_const(3) == sym_const(3)
        assert hash(sym_const(3)) == hash(sym_const(3))

    def test_variable_domain(self):
        var = sym_var("b", 0, 255)
        assert var.domain_size == 256

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            sym_var("bad", 5, 1)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            sym_bin("**", X, Y)

    def test_negation_of_comparison(self):
        expr = sym_bin("<", X, sym_const(5))
        assert expr.negated() == sym_bin(">=", X, sym_const(5))

    def test_double_negation_of_not(self):
        expr = sym_not(sym_bin("==", X, sym_const(1)))
        assert expr.negated() == sym_bin("==", X, sym_const(1))

    def test_de_morgan_on_and(self):
        expr = sym_bin("&&", sym_bin("<", X, Y), sym_bin("==", X, sym_const(0)))
        negated = expr.negated()
        assert negated.op == "||"

    def test_as_condition_wraps_non_boolean(self):
        cond = as_condition(X)
        assert cond == sym_bin("!=", X, sym_const(0))

    def test_as_condition_keeps_boolean(self):
        expr = sym_bin("<", X, Y)
        assert as_condition(expr) is expr


class TestEvaluation:
    def test_arithmetic(self):
        expr = sym_bin("+", sym_bin("*", X, sym_const(3)), Y)
        assert evaluate(expr, {"x": 4, "y": 2}) == 14

    def test_c_style_division_truncates_toward_zero(self):
        expr = sym_bin("/", X, sym_const(2))
        assert evaluate(expr, {"x": -7}) == -3

    def test_c_style_modulo_sign(self):
        expr = sym_bin("%", X, sym_const(3))
        assert evaluate(expr, {"x": -7}) == -1

    def test_comparison_and_logic(self):
        expr = sym_bin("&&", sym_bin("<", X, Y), sym_bin("!=", Y, sym_const(0)))
        assert evaluate(expr, {"x": 1, "y": 2}) == 1
        assert evaluate(expr, {"x": 3, "y": 2}) == 0

    def test_short_circuit_avoids_division_by_zero(self):
        expr = sym_bin("&&", sym_bin("!=", Y, sym_const(0)),
                       sym_bin(">", sym_bin("/", X, Y), sym_const(0)))
        assert evaluate(expr, {"x": 4, "y": 0}) == 0

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate(X, {})


class TestSimplification:
    def test_constant_folding(self):
        expr = sym_bin("+", sym_const(2), sym_bin("*", sym_const(3), sym_const(4)))
        assert simplify(expr) == sym_const(14)

    def test_add_zero_identity(self):
        assert simplify(sym_bin("+", X, sym_const(0))) == X

    def test_multiply_by_zero(self):
        assert simplify(sym_bin("*", X, sym_const(0))) == sym_const(0)

    def test_multiply_by_one(self):
        assert simplify(sym_bin("*", sym_const(1), X)) == X

    def test_and_with_true(self):
        expr = sym_bin("&&", sym_const(1), sym_bin("<", X, Y))
        assert simplify(expr) == sym_bin("<", X, Y)

    def test_or_with_false(self):
        expr = sym_bin("||", sym_const(0), sym_bin("<", X, Y))
        assert simplify(expr) == sym_bin("<", X, Y)

    def test_compare_identical_subtrees(self):
        assert simplify(sym_bin("==", X, X)) == sym_const(1)
        assert simplify(sym_bin("<", X, X)) == sym_const(0)

    def test_simplify_is_idempotent(self):
        expr = sym_bin("+", sym_bin("*", X, sym_const(1)), sym_const(0))
        once = simplify(expr)
        assert simplify(once) == once

    def test_substitute_partial(self):
        expr = sym_bin("+", X, Y)
        assert substitute(expr, {"x": 5}) == sym_bin("+", sym_const(5), Y)

    def test_variables_extraction(self):
        expr = sym_bin("+", X, sym_bin("*", Y, X))
        assert {v.name for v in variables(expr)} == {"x", "y"}


class TestConstraintSet:
    def test_ordering_preserved(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", X, sym_const(1)))
        cs.add_expr(sym_bin("<", Y, sym_const(5)))
        assert len(cs) == 2
        assert str(cs[0].expr) == "(x == 1)"

    def test_extended_does_not_mutate_original(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", X, sym_const(1)))
        extended = cs.extended(Constraint(sym_bin("==", Y, sym_const(2))))
        assert len(cs) == 1
        assert len(extended) == 2

    def test_satisfied_by(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", X, sym_const(1)))
        cs.add_expr(sym_bin(">", Y, sym_const(3)))
        assert cs.satisfied_by({"x": 1, "y": 4})
        assert not cs.satisfied_by({"x": 1, "y": 3})
        assert not cs.satisfied_by({"x": 1})

    def test_trivially_unsat(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", sym_const(1), sym_const(2)))
        assert cs.is_trivially_unsat()

    def test_with_negated_last(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", X, sym_const(1)))
        cs.add_expr(sym_bin("==", Y, sym_const(2)))
        flipped = cs.with_negated_last()
        assert str(flipped[1].expr) == "(y != 2)"

    def test_prefix(self):
        cs = ConstraintSet()
        for value in range(5):
            cs.add_expr(sym_bin("!=", X, sym_const(value)))
        assert len(cs.prefix(3)) == 3

    def test_all_variables_deduplicated(self):
        cs = ConstraintSet()
        cs.add_expr(sym_bin("==", X, sym_const(1)))
        cs.add_expr(sym_bin("<", X, Y))
        names = sorted(v.name for v in cs.all_variables())
        assert names == ["x", "y"]
