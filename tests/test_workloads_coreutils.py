"""Tests for the coreutils workloads (§5.2): behaviour, bugs and reproduction."""

import pytest

from repro import (
    ConcolicBudget,
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
)
from repro.interp.inputs import ExecutionMode
from repro.workloads.coreutils import ALL_PROGRAMS, mkdir, mkfifo, mknod, paste
from tests.conftest import run_source


class TestBehaviour:
    def test_mkdir_creates_directories(self):
        result, _, interp = run_source(mkdir.SOURCE, ["mkdir", "-p", "a/b", "-v", "c"])
        assert result.exit_code == 0
        assert interp.kernel.fs.is_dir("/a/b")
        assert interp.kernel.fs.is_dir("/c")
        assert "created directory" in result.stdout

    def test_mkdir_reports_duplicate(self):
        result, _, interp = run_source(mkdir.SOURCE, ["mkdir", "x", "x"])
        assert result.exit_code == 1
        assert "cannot create" in result.stdout

    def test_mkdir_invalid_mode(self):
        result, _, _ = run_source(mkdir.SOURCE, ["mkdir", "-m", "9x", "dir"])
        assert result.exit_code == 1
        assert "invalid mode" in result.stdout

    def test_mknod_creates_fifo_node(self):
        result, _, interp = run_source(mknod.SOURCE, ["mknod", "-m", "0644", "pipe0", "p"])
        assert result.exit_code == 0
        assert interp.kernel.fs.exists("/pipe0")

    def test_mknod_block_device_with_numbers(self):
        result, _, _ = run_source(mknod.SOURCE, ["mknod", "disk", "b", "8", "1"])
        assert result.exit_code == 0

    def test_mknod_rejects_unknown_type(self):
        result, _, _ = run_source(mknod.SOURCE, ["mknod", "thing", "q"])
        assert result.exit_code == 1
        assert "invalid type" in result.stdout

    def test_mkfifo_creates_pipes(self):
        result, _, interp = run_source(mkfifo.SOURCE, ["mkfifo", "p1", "p2"])
        assert result.exit_code == 0
        assert interp.kernel.fs.exists("/p1")
        assert interp.kernel.fs.exists("/p2")

    def test_mkfifo_valid_short_mode(self):
        result, _, _ = run_source(mkfifo.SOURCE, ["mkfifo", "-m", "644", "p"])
        assert result.exit_code == 0

    def test_paste_joins_lines(self):
        files = {"/a.txt": b"1\n2\n", "/b.txt": b"x\ny\n"}
        result, _, _ = run_source(paste.SOURCE, ["paste", "-d,", "/a.txt", "/b.txt"],
                                  files=files)
        assert result.exit_code == 0
        assert "1,2" in result.stdout

    def test_paste_missing_file(self):
        result, _, _ = run_source(paste.SOURCE, ["paste", "/nope"])
        assert result.exit_code == 1
        assert "cannot open" in result.stdout


class TestCrashBugs:
    @pytest.mark.parametrize("name,module", sorted(ALL_PROGRAMS.items()))
    def test_bug_scenarios_crash(self, name, module):
        env = module.bug_scenario()
        result, _, _ = run_source(module.SOURCE, env.argv)
        assert result.crashed, f"{name} bug scenario did not crash"

    @pytest.mark.parametrize("name,module", sorted(ALL_PROGRAMS.items()))
    def test_benign_scenarios_do_not_crash(self, name, module):
        env = module.benign_scenario()
        result, _, _ = run_source(module.SOURCE, env.argv,
                                  files=getattr(env.make_kernel().fs, "snapshot")())
        assert not result.crashed, f"{name} benign scenario crashed"

    def test_paste_bug_matches_paper_command(self):
        env = paste.bug_scenario()
        assert env.argv[1] == "-d\\"
        result, _, _ = run_source(paste.SOURCE, env.argv)
        assert result.crashed
        assert result.crash.function == "collect_delimiters"


class TestBranchAssumptions:
    """The two §5.2 assumptions: few symbolic locations, and no mixed locations."""

    @pytest.mark.parametrize("name,module", sorted(ALL_PROGRAMS.items()))
    def test_symbolic_locations_are_a_minority(self, name, module):
        env = module.benign_scenario()
        result, trace, _ = run_source(module.SOURCE, env.argv,
                                      files=env.make_kernel().fs.snapshot(),
                                      mode=ExecutionMode.ANALYZE)
        visited = len(trace.visited_locations())
        symbolic = len(trace.symbolic_locations())
        assert visited > 0
        assert symbolic <= visited

    @pytest.mark.parametrize("name,module", sorted(ALL_PROGRAMS.items()))
    def test_mixed_branch_locations_are_rare(self, name, module):
        # The paper's second assumption: a branch location is "almost always"
        # executed either always-symbolic or always-concrete.  A small number
        # of mixed locations (e.g. a loop whose final iteration tests the
        # concrete NUL terminator) is tolerated, as in the paper's Figure 3.
        env = module.benign_scenario()
        _, trace, _ = run_source(module.SOURCE, env.argv,
                                 files=env.make_kernel().fs.snapshot(),
                                 mode=ExecutionMode.ANALYZE)
        assert len(trace.mixed_locations()) <= 2


class TestReproduction:
    """Table 1: the crash bugs are reproduced quickly by every configuration."""

    @pytest.mark.parametrize("name,module", sorted(ALL_PROGRAMS.items()))
    def test_bug_reproduced_with_combined_method(self, name, module):
        config = PipelineConfig(
            concolic_budget=ConcolicBudget(max_iterations=16, max_seconds=6),
            replay_budget=ReplayBudget(max_runs=250, max_seconds=15),
        )
        pipeline = Pipeline.from_source(module.SOURCE, name=name, config=config)
        env = module.bug_scenario()
        analysis = pipeline.analyze(env)
        plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, analysis)
        recording = pipeline.record(plan, env)
        assert recording.crashed
        report = pipeline.reproduce(recording)
        assert report.reproduced, f"{name}: {report.outcome.summary()}"
