"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only_source(self):
        tokens = tokenize("   \n\t  \r\n ")
        assert [t.type for t in tokens] == [TokenType.EOF]

    def test_identifier(self):
        assert values("counter") == ["counter"]

    def test_identifier_with_underscore_and_digits(self):
        assert values("_buf2_end") == ["_buf2_end"]

    def test_keyword_vs_identifier(self):
        tokens = tokenize("int integer")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT

    def test_decimal_integer(self):
        assert values("12345") == [12345]

    def test_hex_integer(self):
        assert values("0x1F") == [31]

    def test_zero(self):
        assert values("0") == [0]


class TestLiterals:
    def test_char_literal(self):
        assert values("'a'") == [ord("a")]

    def test_char_escape_newline(self):
        assert values(r"'\n'") == [10]

    def test_char_escape_backslash(self):
        assert values(r"'\\'") == [92]

    def test_char_escape_nul(self):
        assert values(r"'\0'") == [0]

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\tb\n"') == ["a\tb\n"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestOperators:
    @pytest.mark.parametrize("op", ["==", "!=", "<=", ">=", "&&", "||", "++",
                                    "--", "+=", "-=", "<<", ">>"])
    def test_two_char_operators(self, op):
        assert values(f"a {op} b") == ["a", op, "b"]

    def test_longest_match_wins(self):
        # "<<=" should not be split into "<<" and "=".
        assert values("a <<= b") == ["a", "<<=", "b"]

    def test_single_char_operators(self):
        assert values("a+b*c") == ["a", "+", "b", "*", "c"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestCommentsAndPositions:
    def test_line_comment_is_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_is_skipped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_preprocessor_line_is_ignored(self):
        assert values("#include <stdio.h>\nint x") == ["int", "x"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("int x;\nint y;")
        y_token = [t for t in tokens if t.value == "y"][0]
        assert y_token.line == 2
        assert y_token.column == 5

    def test_token_helpers(self):
        token = Token(TokenType.OP, "+", 1, 1)
        assert token.is_op("+", "-")
        assert not token.is_op("*")
        keyword = Token(TokenType.KEYWORD, "if", 1, 1)
        assert keyword.is_keyword("if")
        assert not keyword.is_keyword("while")
