"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings, strategies as st

from repro.instrument.logger import BitvectorLog
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.expr import SymBinOp, SymConst, SymExpr, SymUnOp, SymVar
from repro.symbolic.simplify import evaluate, simplify, variables
from repro.symbolic.solver import solve
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program

# ---------------------------------------------------------------------------
# Symbolic expression generators
# ---------------------------------------------------------------------------

VAR_NAMES = ("a", "b", "c")

constants = st.integers(min_value=-64, max_value=64).map(SymConst)
variables_strategy = st.sampled_from(VAR_NAMES).map(lambda n: SymVar(n, 0, 255))
leaves = st.one_of(constants, variables_strategy)

ARITH = ("+", "-", "*")
COMPARE = ("==", "!=", "<", "<=", ">", ">=")
LOGIC = ("&&", "||")


def expressions(depth=3):
    if depth == 0:
        return leaves
    sub = expressions(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(st.sampled_from(ARITH + COMPARE + LOGIC), sub, sub)
          .map(lambda t: SymBinOp(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(("-", "!")), sub)
          .map(lambda t: SymUnOp(t[0], t[1])),
    )


assignments = st.fixed_dictionaries({name: st.integers(0, 255) for name in VAR_NAMES})


class TestSimplifierProperties:
    @given(expressions(), assignments)
    @settings(max_examples=200, deadline=None)
    def test_simplify_preserves_value(self, expr, assignment):
        original = evaluate(expr, assignment)
        simplified = simplify(expr)
        assert evaluate(simplified, assignment) == original

    @given(expressions())
    @settings(max_examples=100, deadline=None)
    def test_simplify_is_idempotent(self, expr):
        once = simplify(expr)
        assert simplify(once) == once

    @given(expressions())
    @settings(max_examples=100, deadline=None)
    def test_simplify_never_introduces_variables(self, expr):
        before = {v.name for v in variables(expr)}
        after = {v.name for v in variables(simplify(expr))}
        assert after <= before

    @given(expressions(2), assignments)
    @settings(max_examples=200, deadline=None)
    def test_negation_flips_truth_value(self, expr, assignment):
        value = evaluate(expr, assignment)
        negated = evaluate(expr.negated(), assignment)
        assert bool(value) != bool(negated)


class TestSolverProperties:
    comparison_constraints = st.lists(
        st.tuples(st.sampled_from(VAR_NAMES), st.sampled_from(COMPARE),
                  st.integers(0, 255)),
        min_size=1, max_size=4)

    @given(comparison_constraints)
    @settings(max_examples=100, deadline=None)
    def test_solver_solutions_satisfy_constraints(self, triples):
        cs = ConstraintSet()
        for name, op, value in triples:
            cs.add_expr(SymBinOp(op, SymVar(name, 0, 255), SymConst(value)))
        result = solve(cs)
        if result.satisfiable:
            assert cs.satisfied_by(result.assignment)

    @given(st.fixed_dictionaries({name: st.integers(0, 255) for name in VAR_NAMES}))
    @settings(max_examples=100, deadline=None)
    def test_equality_pinning_is_always_recovered(self, target):
        # The solver must recover any concrete byte assignment pinned by
        # equalities — this is exactly the replay engine's workload.
        cs = ConstraintSet()
        for name, value in target.items():
            cs.add_expr(SymBinOp("==", SymVar(name, 0, 255), SymConst(value)))
        result = solve(cs)
        assert result.satisfiable
        assert result.assignment == target


class TestBitvectorProperties:
    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_through_bytes(self, bits):
        log = BitvectorLog.from_bits(bits)
        packed = log.to_bytes()
        assert len(packed) == (len(bits) + 7) // 8
        unpacked = [bool(packed[i // 8] >> (i % 8) & 1) for i in range(len(bits))]
        assert unpacked == list(bits)

    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_storage_is_monotone(self, bits):
        log = BitvectorLog.from_bits(bits)
        assert log.storage_bytes() <= log.storage_bytes() + 1
        assert len(log) == len(bits)


class TestLexerParserProperties:
    identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,6}", fullmatch=True).filter(
        lambda s: s not in ("int", "char", "void", "if", "else", "while", "for",
                            "return", "break", "continue", "long", "unsigned",
                            "struct", "sizeof"))

    @given(st.lists(st.integers(0, 9999), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_integer_literals_roundtrip(self, numbers):
        source = " ".join(str(n) for n in numbers)
        tokens = tokenize(source)
        assert [t.value for t in tokens[:-1]] == numbers

    @given(identifiers, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_generated_programs_parse(self, name, value):
        source = f"int main() {{ int {name} = {value}; return {name}; }}"
        unit = parse_program(source)
        assert unit.functions[0].name == "main"
