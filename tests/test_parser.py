"""Unit tests for the MiniC parser and AST structure."""

import pytest

from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    BinaryOp,
    Block,
    Call,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    ReturnStmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
    WhileStmt,
    iter_branch_statements,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


def parse_main(body: str):
    unit = parse_program("int main() { " + body + " }")
    return unit.functions[0].body.statements


class TestTopLevel:
    def test_function_definition(self):
        unit = parse_program("int add(int a, int b) { return a + b; }")
        assert len(unit.functions) == 1
        fn = unit.functions[0]
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_parameter_list(self):
        unit = parse_program("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_pointer_types(self):
        unit = parse_program("int main(int argc, char **argv) { return 0; }")
        assert unit.functions[0].params[1].type_name.pointer_depth == 2

    def test_global_declaration(self):
        unit = parse_program("int counter; int main() { return 0; }")
        assert len(unit.globals) == 1
        assert unit.globals[0].decl.declarators[0].name == "counter"

    def test_global_array(self):
        unit = parse_program("char BUF[128]; int main() { return 0; }")
        decl = unit.globals[0].decl.declarators[0]
        assert decl.is_array
        assert isinstance(decl.array_size, IntLiteral)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0 }")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0;")


class TestStatements:
    def test_variable_declaration_with_init(self):
        stmts = parse_main("int x = 5;")
        assert isinstance(stmts[0], VarDecl)
        assert stmts[0].declarators[0].init.value == 5

    def test_multiple_declarators(self):
        stmts = parse_main("int a, b, c;")
        assert [d.name for d in stmts[0].declarators] == ["a", "b", "c"]

    def test_array_declaration(self):
        stmts = parse_main("char buf[64];")
        assert stmts[0].declarators[0].is_array

    def test_assignment(self):
        stmts = parse_main("x = 1;")
        assert isinstance(stmts[0], Assign)

    def test_compound_assignment_desugars(self):
        stmts = parse_main("x += 2;")
        assign = stmts[0]
        assert isinstance(assign, Assign)
        assert isinstance(assign.value, BinaryOp)
        assert assign.value.op == "+"

    def test_if_else(self):
        stmts = parse_main("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmts[0], IfStmt)
        assert stmts[0].otherwise is not None

    def test_if_without_else(self):
        stmts = parse_main("if (x) y = 1;")
        assert stmts[0].otherwise is None

    def test_while_loop(self):
        stmts = parse_main("while (i < 10) i = i + 1;")
        assert isinstance(stmts[0], WhileStmt)

    def test_for_loop_with_declaration(self):
        stmts = parse_main("for (int i = 0; i < 3; i = i + 1) { total = total + i; }")
        loop = stmts[0]
        assert isinstance(loop, ForStmt)
        assert isinstance(loop.init, VarDecl)
        assert loop.cond is not None
        assert loop.update is not None

    def test_for_loop_without_condition(self):
        stmts = parse_main("for (;;) { break; }")
        assert stmts[0].cond is None

    def test_return_without_value(self):
        stmts = parse_main("return;")
        assert isinstance(stmts[0], ReturnStmt)
        assert stmts[0].value is None

    def test_empty_statement(self):
        stmts = parse_main(";")
        assert isinstance(stmts[0], Block)
        assert stmts[0].statements == []


class TestExpressions:
    def expr_of(self, text):
        stmts = parse_main(f"x = {text};")
        return stmts[0].value

    def test_precedence_multiplication_over_addition(self):
        expr = self.expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"

    def test_comparison_chain(self):
        expr = self.expr_of("a < b == c")
        assert expr.op == "=="

    def test_logical_operators(self):
        expr = self.expr_of("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary_minus_and_not(self):
        expr = self.expr_of("-a + !b")
        assert isinstance(expr.left, UnaryOp)
        assert expr.left.op == "-"
        assert expr.right.op == "!"

    def test_ternary(self):
        expr = self.expr_of("a ? b : c")
        assert isinstance(expr, TernaryOp)

    def test_array_indexing(self):
        expr = self.expr_of("buf[i + 1]")
        assert isinstance(expr, ArrayIndex)

    def test_nested_indexing(self):
        expr = self.expr_of("argv[1][0]")
        assert isinstance(expr, ArrayIndex)
        assert isinstance(expr.base, ArrayIndex)

    def test_function_call_with_args(self):
        expr = self.expr_of("f(1, x, g(2))")
        assert isinstance(expr, Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], Call)

    def test_address_of_and_dereference(self):
        expr = self.expr_of("*p + 0")
        assert expr.left.op == "*"

    def test_string_literal_expression(self):
        expr = self.expr_of('"hi"')
        assert isinstance(expr, StringLiteral)

    def test_post_increment_desugars_to_assignment(self):
        stmts = parse_main("i++;")
        assert isinstance(stmts[0], Assign)

    def test_cast_is_ignored(self):
        expr = self.expr_of("(int) x")
        assert isinstance(expr, Identifier)

    def test_sizeof_is_constant(self):
        expr = self.expr_of("sizeof(int)")
        assert isinstance(expr, IntLiteral)


class TestBranchEnumeration:
    def test_branch_statements_found(self):
        unit = parse_program("""
            int main() {
                int i;
                if (1) { i = 0; }
                while (i < 3) { i = i + 1; }
                for (i = 0; i < 2; i = i + 1) { }
                for (;;) { break; }
                return 0;
            }
        """)
        branches = list(iter_branch_statements(unit.functions[0].body))
        # The condition-less for loop is not a branch location.
        assert len(branches) == 3

    def test_node_ids_are_unique(self):
        unit = parse_program("int main() { int a = 1; int b = 2; return a + b; }")
        ids = [node.node_id for node in unit.walk()]
        assert len(ids) == len(set(ids))
