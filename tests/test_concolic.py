"""Tests for the dynamic (concolic) analysis engine and branch labels."""

import pytest

from repro.concolic.budget import ConcolicBudget
from repro.concolic.engine import ConcolicEngine
from repro.concolic.labels import BranchLabel, BranchLabels
from repro.environment import simple_environment
from repro.lang.cfg import BranchLocation
from repro.lang.program import Program
from repro.workloads import fibonacci


def location(line, node_id=0, fn="main", kind="if"):
    return BranchLocation(function=fn, node_id=node_id or line, line=line, kind=kind)


class TestBranchLabels:
    def test_initial_state_is_unvisited(self):
        labels = BranchLabels.for_program([location(1), location(2)])
        assert labels.label_of(location(1)) is BranchLabel.UNVISITED
        assert labels.coverage() == 0.0

    def test_observe_concrete_then_symbolic_upgrades(self):
        labels = BranchLabels.for_program([location(1)])
        labels.observe(location(1), symbolic=False)
        assert labels.label_of(location(1)) is BranchLabel.CONCRETE
        labels.observe(location(1), symbolic=True)
        assert labels.label_of(location(1)) is BranchLabel.SYMBOLIC

    def test_symbolic_label_is_sticky(self):
        labels = BranchLabels.for_program([location(1)])
        labels.observe(location(1), symbolic=True)
        labels.observe(location(1), symbolic=False)
        assert labels.label_of(location(1)) is BranchLabel.SYMBOLIC

    def test_coverage_counts_visited_fraction(self):
        labels = BranchLabels.for_program([location(i) for i in range(1, 5)])
        labels.observe(location(1), symbolic=True)
        labels.observe(location(2), symbolic=False)
        assert labels.coverage() == pytest.approx(0.5)

    def test_merge_applies_same_rules(self):
        a = BranchLabels.for_program([location(1), location(2)])
        a.observe(location(1), symbolic=False)
        b = BranchLabels.for_program([location(1), location(2)])
        b.observe(location(1), symbolic=True)
        b.observe(location(2), symbolic=False)
        a.merge(b)
        assert a.label_of(location(1)) is BranchLabel.SYMBOLIC
        assert a.label_of(location(2)) is BranchLabel.CONCRETE

    def test_counts_and_summary(self):
        labels = BranchLabels.for_program([location(i) for i in range(1, 4)])
        labels.observe(location(1), symbolic=True)
        counts = labels.counts()
        assert counts == {"symbolic": 1, "concrete": 0, "unvisited": 2, "total": 3}
        assert "1 symbolic" in labels.summary()


class TestConcolicEngine:
    BRANCHY = r"""
    int classify(char c) {
        if (c == 'a') { return 1; }
        if (c == 'b') { return 2; }
        if (c < 'a') { return 3; }
        return 0;
    }
    int main(int argc, char **argv) {
        int fixed = 0;
        if (argc > 99) { fixed = 1; }
        return classify(argv[1][0]);
    }
    """

    def make_engine(self, budget=None):
        program = Program.from_source(self.BRANCHY, name="branchy")
        env = simple_environment(["branchy", "z"], name="branchy-env")
        return ConcolicEngine(program, env, budget or ConcolicBudget(max_iterations=20,
                                                                     max_seconds=5))

    def test_profile_run_labels_symbolic_branches(self):
        engine = self.make_engine()
        recorder = engine.profile_run()
        symbolic_lines = {loc.line for loc in recorder.symbolic_locations()}
        assert 3 in symbolic_lines or 4 in symbolic_lines

    def test_exploration_reaches_full_coverage(self):
        engine = self.make_engine()
        result = engine.explore()
        assert result.coverage == pytest.approx(1.0)
        # The three input-dependent checks in classify are symbolic; the argc
        # check in main depends on input too (argc is derived from argv).
        assert len(result.labels.symbolic) >= 3

    def test_exploration_distinguishes_concrete_branches(self):
        program = Program.from_source(
            "int main(int argc, char **argv) {"
            " int i; int t = 0;"
            " for (i = 0; i < 3; i = i + 1) { t = t + i; }"
            " if (argv[1][0] == 'q') { t = 0; }"
            " return t; }",
            name="mix")
        env = simple_environment(["mix", "q"], name="mix-env")
        result = ConcolicEngine(program, env, ConcolicBudget(max_iterations=8,
                                                             max_seconds=5)).explore()
        kinds = {loc.kind: result.labels.label_of(loc) for loc in program.branch_locations}
        assert kinds["for"] is BranchLabel.CONCRETE
        assert kinds["if"] is BranchLabel.SYMBOLIC

    def test_budget_limits_iterations(self):
        engine = self.make_engine(ConcolicBudget(max_iterations=1, max_seconds=5))
        result = engine.explore()
        assert result.iterations == 1

    def test_larger_budget_never_reduces_coverage(self):
        small = self.make_engine(ConcolicBudget(max_iterations=1, max_seconds=5)).explore()
        large = self.make_engine(ConcolicBudget(max_iterations=16, max_seconds=5)).explore()
        assert large.coverage >= small.coverage

    def test_runs_are_recorded(self):
        result = self.make_engine().explore()
        assert len(result.runs) == result.iterations
        assert result.runs[0].iteration == 1

    def test_listing1_has_exactly_two_symbolic_locations(self):
        program = Program.from_source(fibonacci.SOURCE, name="fib")
        env = fibonacci.scenario_b()
        result = ConcolicEngine(program, env,
                                ConcolicBudget(max_iterations=6, max_seconds=10)).explore()
        symbolic_functions = {loc.function for loc in result.labels.symbolic}
        assert symbolic_functions == {"main"}
        assert len(result.labels.symbolic) == 2

    def test_budget_presets(self):
        assert ConcolicBudget.low_coverage().max_iterations < ConcolicBudget.high_coverage().max_iterations
        scaled = ConcolicBudget(max_iterations=10, max_seconds=1.0).scaled(2.0)
        assert scaled.max_iterations == 20
