"""The adaptive planner: ledger, policy, service loop, wire op, CLI.

The load-bearing contracts:

* **Correctness-preserving revision** — the replanner only drops branches
  the fleet's profiles show as concrete-only (four-case hook policy, case
  3 -> 4), so a trace recorded under the revised plan still reproduces,
  byte-identically to its own single-shot search.
* **Mixed-fingerprint fleets keep working** — traces recorded under an
  older plan version still ingest after a replan, cluster separately from
  newer-plan traces, and are verified against the plan they actually ran
  (routed through the ledger by fingerprint).
* **Determinism** — the same fleet history and seed yield a byte-identical
  ``plan_ledger.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import InstrumentationMethod, ReplayBudget
from repro.instrument.plan import InstrumentationPlan
from repro.lang.cfg import BranchLocation
from repro.planner import (
    LEDGER_FILE,
    FleetObservations,
    PlanLedger,
    ReplanPolicy,
    Replanner,
    plan_fingerprint_digest,
    plan_version_of,
    replan_method,
)
from repro.service import (
    ReproConfig,
    ReproService,
    TraceInbox,
    UploadClient,
    UploadRejected,
    UploadServer,
    outcome_fingerprint,
    workload_pipeline,
)
from repro.service.cli import main as cli_main


def planner_config() -> ReproConfig:
    config = ReproConfig()
    config.replay.budget = ReplayBudget(max_runs=1500, max_seconds=60)
    return config


@pytest.fixture(scope="module")
def mkdir_setup():
    pipeline, environment = workload_pipeline("mkdir-bug",
                                              config=planner_config())
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    return pipeline, environment, plan


def replanned_root(tmp_path, mkdir_setup, **service_kwargs):
    """A service root with one processed mkdir trace and one replan done."""

    pipeline, environment, plan = mkdir_setup
    os.makedirs(str(tmp_path), exist_ok=True)
    root = str(tmp_path / "inbox")
    trace_path = str(tmp_path / "gen0.trace")
    pipeline.record_trace(plan, environment, trace_path)
    service = ReproService(root, config=planner_config(), **service_kwargs)
    result = service.ingest_file(trace_path)
    service.process()
    revisions = service.replan()
    return service, result, revisions


class TestVersionHelpers:
    def test_replan_method_round_trips_version(self):
        assert replan_method(3) == "replan/v3"
        assert plan_version_of("replan/v3") == 3
        assert plan_version_of("replan/v") is None
        assert plan_version_of("all branches") is None
        assert plan_version_of(InstrumentationMethod.ALL_BRANCHES) is None

    def test_fingerprint_digest_matches_plan_and_tuple(self, mkdir_setup):
        _pipeline, _environment, plan = mkdir_setup
        digest = plan_fingerprint_digest(plan)
        assert digest == plan_fingerprint_digest(plan.fingerprint())
        assert len(digest) == 16 and int(digest, 16) >= 0
        # Method and syscall logging are not part of the identity.
        relabeled = InstrumentationPlan.from_sets(
            method=replan_method(9), instrumented=plan.instrumented,
            all_locations=plan.all_locations, log_syscalls=False)
        assert plan_fingerprint_digest(relabeled) == digest


class TestPlanLedger:
    def test_register_and_lookup_round_trip(self, tmp_path, mkdir_setup):
        _pipeline, _environment, plan = mkdir_setup
        ledger = PlanLedger.load(str(tmp_path))
        base = ledger.register_base("mkdir-bug", plan)
        assert (base.version, base.parent) == (1, None)
        # Idempotent by fingerprint: same plan, same entry.
        assert ledger.register_base("mkdir-bug", plan) is base

        revised = InstrumentationPlan.from_sets(
            method=replan_method(2),
            instrumented=set(list(sorted(plan.instrumented))[:-2]),
            all_locations=plan.all_locations,
            log_syscalls=plan.log_syscalls)
        entry = ledger.register("mkdir-bug", revised, {"seed": 0})
        assert (entry.version, entry.parent) == (2, 1)
        ledger.save()

        reborn = PlanLedger.load(str(tmp_path))
        assert reborn.latest("mkdir-bug").version == 2
        assert reborn.version("mkdir-bug", 1).fingerprint == base.fingerprint
        routed = reborn.by_fingerprint("mkdir-bug",
                                       plan_fingerprint_digest(revised))
        assert routed is not None and routed.version == 2
        assert routed.revision == {"seed": 0}
        # The rebuilt plan carries the same identity as what registered it.
        assert plan_fingerprint_digest(routed.plan()) == routed.fingerprint
        assert routed.plan().instrumented == revised.instrumented

    def test_save_is_canonical(self, tmp_path, mkdir_setup):
        _pipeline, _environment, plan = mkdir_setup
        first = PlanLedger.load(str(tmp_path / "a"))
        second = PlanLedger.load(str(tmp_path / "b"))
        for ledger in (first, second):
            ledger.register_base("mkdir-bug", plan)
            ledger.save()
        with open(first.path, "rb") as handle_a, \
                open(second.path, "rb") as handle_b:
            assert handle_a.read() == handle_b.read()

    def test_load_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / LEDGER_FILE
        path.write_text(json.dumps({"version": 999, "programs": {}}))
        with pytest.raises(ValueError, match="unsupported"):
            PlanLedger(str(path))
        path.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            PlanLedger(str(path))


def _location(function, node_id, line, kind="if"):
    return BranchLocation(function=function, node_id=node_id, line=line,
                          kind=kind)


class TestReplanner:
    def _observations(self, plan, all_locations):
        """Hand-built fleet evidence: two concrete hot branches, one
        symbolic logged branch, one symbolic *unlogged* branch in the
        (expensive) crashing function."""

        observations = FleetObservations()
        obs = observations.for_program("p")
        hot, warm, symbolic, candidate = all_locations
        for location, logged, sym in ((hot, 100, 0), (warm, 40, 0),
                                      (symbolic, 10, 10)):
            record = obs.evidence(location)
            record.logged_executions = logged
            record.symbolic_executions = sym
            record.concrete_executions = logged - sym
            record.last_executions = logged
        record = obs.evidence(candidate)
        record.symbolic_executions = 5
        record.last_executions = 5
        obs.search_runs_by_function = {"crashy": 100, "other": 1}
        obs.base_units = 1000
        return observations

    def _plan_and_locations(self):
        hot = _location("other", 1, 10)
        warm = _location("other", 2, 12)
        symbolic = _location("crashy", 3, 20)
        candidate = _location("crashy", 4, 22)
        plan = InstrumentationPlan.from_sets(
            method="all branches", instrumented={hot, warm, symbolic},
            all_locations={hot, warm, symbolic, candidate})
        return plan, (hot, warm, symbolic, candidate)

    def test_drops_concrete_keeps_symbolic_adds_candidate(self):
        plan, locations = self._plan_and_locations()
        hot, warm, symbolic, candidate = locations
        observations = self._observations(plan, locations)
        replanner = Replanner(ReplanPolicy(seed=0, max_drop_fraction=1.0))
        revised, revision = replanner.propose("p", plan, observations,
                                              version=2, parent=1)
        assert not revised.is_instrumented(hot)
        assert not revised.is_instrumented(warm)
        # Symbolic branches are never dropped (case 2 -> 1 raises cost)...
        assert revised.is_instrumented(symbolic)
        # ...and freed budget goes to the expensive function's symbolic
        # branch (case 1 -> 2 prunes its search).
        assert revised.is_instrumented(candidate)
        assert revised.method == replan_method(2)
        assert revision.dropped == [["other", 1, 10, "if"],
                                    ["other", 2, 12, "if"]]
        assert revision.added == [["crashy", 4, 22, "if"]]
        # Additions spend strictly less than drops freed.
        assert revision.predicted_units_delta < 0
        assert revision.predicted_overhead_delta_percent < 0

    def test_converged_and_empty_histories_return_none(self):
        plan, locations = self._plan_and_locations()
        replanner = Replanner()
        assert replanner.propose("p", plan, FleetObservations(),
                                 version=2, parent=1) is None
        # All-symbolic evidence: nothing droppable, even with history.
        observations = FleetObservations()
        record = observations.for_program("p").evidence(locations[2])
        record.logged_executions = record.symbolic_executions = 10
        assert replanner.propose("p", plan, observations,
                                 version=2, parent=1) is None

    def test_same_seed_same_revision(self):
        plan, locations = self._plan_and_locations()
        observations = self._observations(plan, locations)
        proposals = [
            Replanner(ReplanPolicy(seed=7)).propose(
                "p", plan, observations, version=2, parent=1)
            for _ in range(2)]
        (plan_a, rev_a), (plan_b, rev_b) = proposals
        assert plan_a.fingerprint() == plan_b.fingerprint()
        assert rev_a.to_json() == rev_b.to_json()


class TestServiceReplanLoop:
    def test_replan_registers_and_persists_versions(self, tmp_path,
                                                    mkdir_setup):
        service, _result, revisions = replanned_root(tmp_path, mkdir_setup)
        assert "mkdir-bug" in revisions
        latest = service.plan_ledger.latest("mkdir-bug")
        assert latest.version == 2 and latest.parent == 1
        assert latest.method == replan_method(2)
        revision = latest.revision
        assert revision["dropped"] and revision["predicted_units_delta"] < 0
        assert os.path.exists(os.path.join(service.inbox.root, LEDGER_FILE))
        # A fresh service on the same root sees the same ledger.
        reread = ReproService(service.inbox.root, config=planner_config())
        assert reread.plan_ledger.latest("mkdir-bug").fingerprint \
            == latest.fingerprint

    def test_mixed_fingerprint_fleet_clusters_and_reproduces(self, tmp_path,
                                                             mkdir_setup):
        """After a replan, generation-0 and generation-2 traces coexist:
        separate clusters, both reproduced, each byte-identical to its own
        single-shot search under the plan it was recorded with."""

        pipeline, environment, base_plan = mkdir_setup
        service, gen0, _revisions = replanned_root(tmp_path, mkdir_setup)
        revised_plan = service.plan_ledger.latest("mkdir-bug").plan()
        assert revised_plan.fingerprint() != base_plan.fingerprint()

        gen2_path = str(tmp_path / "gen2.trace")
        pipeline.record_trace(revised_plan, environment, gen2_path)
        gen2 = service.ingest_file(gen2_path)
        assert not gen2.duplicate
        assert gen2.cluster_id != gen0.cluster_id

        old_cluster = service.inbox.cluster_of(gen0.trace_id)
        new_cluster = service.inbox.cluster_of(gen2.trace_id)
        assert old_cluster.plan_version == 0
        assert new_cluster.plan_version == 2
        assert old_cluster.plan_fingerprint \
            == plan_fingerprint_digest(base_plan)
        assert new_cluster.plan_fingerprint \
            == plan_fingerprint_digest(revised_plan)

        reports = service.process()
        report = reports[gen2.trace_id]
        assert report.reproduced
        single = pipeline.reproduce_from_trace(gen2_path,
                                               expect_plan=revised_plan)
        assert report.fingerprint() == outcome_fingerprint(single.outcome)
        # The generation-0 report survived the replan untouched.
        old_report = service.report(gen0.trace_id)
        assert old_report is not None and old_report.reproduced

    def test_replan_trigger_after_n_reports(self, tmp_path, mkdir_setup):
        pipeline, environment, plan = mkdir_setup
        config = planner_config()
        config.service.replan_after_reports = 1
        trace_path = str(tmp_path / "gen0.trace")
        pipeline.record_trace(plan, environment, trace_path)
        service = ReproService(str(tmp_path / "inbox"), config=config)
        service.ingest_file(trace_path)
        service.process()  # fans out 1 report >= threshold -> replans
        assert service.plan_ledger.latest("mkdir-bug").version == 2
        assert os.path.exists(os.path.join(service.inbox.root, LEDGER_FILE))

    def test_replan_deterministic_across_roots(self, tmp_path, mkdir_setup):
        ledgers = []
        for name in ("left", "right"):
            service, _result, _revisions = replanned_root(
                tmp_path / name, mkdir_setup)
            with open(os.path.join(service.inbox.root, LEDGER_FILE),
                      "rb") as handle:
                ledgers.append(handle.read())
        assert ledgers[0] == ledgers[1]

    def test_replan_without_history_is_a_noop(self, tmp_path):
        service = ReproService(str(tmp_path / "inbox"),
                               config=planner_config())
        assert service.replan() == {}
        assert not os.path.exists(
            os.path.join(service.inbox.root, LEDGER_FILE))


class TestPlanWireOp:
    def test_plan_fetch_latest_and_by_version(self, tmp_path, mkdir_setup):
        service, _result, _revisions = replanned_root(
            tmp_path, mkdir_setup)
        service.close()
        server = UploadServer(service.inbox.root,
                              config=planner_config()).start()
        try:
            client = UploadClient(server.host, server.port,
                                  client_id="planner-test")
            body = client.plan("mkdir-bug")
            assert body["latest"] == 2
            assert body["plan"]["version"] == 2
            assert body["plan"]["method"] == replan_method(2)
            assert body["plan"]["instrumented"]
            base = client.plan("mkdir-bug", version=1)
            assert base["plan"]["version"] == 1
            assert base["latest"] == 2
            with pytest.raises(UploadRejected):
                client.plan("no-such-program")
        finally:
            server.shutdown()


class TestInboxPlanMetadata:
    def test_plan_fields_survive_restart(self, tmp_path, mkdir_setup):
        pipeline, environment, plan = mkdir_setup
        trace_path = str(tmp_path / "gen0.trace")
        pipeline.record_trace(plan, environment, trace_path)
        root = str(tmp_path / "inbox")
        inbox = TraceInbox(root)
        result = inbox.ingest_file(trace_path)
        reborn = TraceInbox(root)
        cluster = reborn.cluster_of(result.trace_id)
        assert cluster.plan_fingerprint == plan_fingerprint_digest(plan)
        assert cluster.plan_version == 0

    def test_info_prints_plan_fingerprint_and_version(self, tmp_path,
                                                      mkdir_setup, capsys):
        pipeline, environment, plan = mkdir_setup
        trace_path = str(tmp_path / "gen0.trace")
        pipeline.record_trace(plan, environment, trace_path)
        assert cli_main(["info", "--trace", trace_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan_fingerprint"] == plan_fingerprint_digest(plan)
        assert payload["plan_version"] == 0


class TestPlannerCli:
    def test_replan_command_reports_revisions(self, tmp_path, mkdir_setup,
                                              capsys):
        service, _result, _revisions = replanned_root(tmp_path, mkdir_setup)
        service.close()
        capsys.readouterr()
        assert cli_main(["replan", "--root", service.inbox.root]) == 0
        out = capsys.readouterr().out
        # The CLI run starts from the persisted v2 ledger and (history
        # unchanged) either advances or reports convergence — both print
        # the ledger path.
        assert "mkdir-bug" in out and LEDGER_FILE in out

    def test_replan_command_empty_root(self, tmp_path, capsys):
        assert cli_main(["replan", "--root", str(tmp_path / "empty")]) == 0
        assert "nothing to replan" in capsys.readouterr().out

    def test_stats_without_profile_prints_hint(self, tmp_path, capsys):
        jsonl = tmp_path / "telemetry.jsonl"
        jsonl.write_text(json.dumps({"type": "counter",
                                     "name": "service.ingested",
                                     "value": 3}) + "\n")
        assert cli_main(["stats", "--jsonl", str(jsonl), "--opcodes"]) == 0
        assert "no profile recorded" in capsys.readouterr().out
        assert cli_main(["stats", "--jsonl", str(jsonl),
                         "--suggest-fusions", "mkdir-bug"]) == 0
        assert "no profile recorded" in capsys.readouterr().out

    def test_stats_suggest_fusions_ranks_catalog_pairs(self, tmp_path,
                                                       capsys):
        from repro.vm.opcodes import OPCODE_NAMES

        jsonl = tmp_path / "telemetry.jsonl"
        with open(jsonl, "w") as handle:
            for name in sorted(set(OPCODE_NAMES.values())):
                handle.write(json.dumps({"type": "counter",
                                         "name": f"vm.opcode.{name}",
                                         "value": 100}) + "\n")
        assert cli_main(["stats", "--jsonl", str(jsonl),
                         "--suggest-fusions", "mkdir-bug"]) == 0
        out = capsys.readouterr().out
        assert "fusion candidates for mkdir-bug" in out
        assert "*" in out  # select_fusions picked at least one
