"""The static scope-resolution pass: edge cases and fuzzed parity.

The first half pins the resolution rules directly (what gets a slot, what
falls back to named cells, what resolves to a global); the second half is a
differential fuzz loop asserting that register-allocated execution is
observably identical to the named-cell VM and the tree-walking interpreter
on randomly generated MiniC snippets that lean into the ugly corners:
implicit declarations, conditional declarations, shadowing, read-before-
write, globals, and block lifetimes.
"""

from __future__ import annotations

import random

import pytest

from repro.environment import simple_environment
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig
from repro.interp.tracer import TraceRecorder
from repro.lang.program import Program
from repro.lang.resolve import (
    GLOBAL,
    NAMED,
    RESOLVER_VERSION,
    SLOT,
    resolve_program,
)
from repro.vm.compiler import compile_program
from repro.vm import opcodes as op


def resolution_for(source: str):
    program = Program.from_source(source, name="probe")
    return program, resolve_program(program)


def kinds_for(resolution, function, name):
    """The set of access kinds the identifier *name* got in *function*."""

    fn = resolution.for_function(function)
    program_kinds = set()
    for node_id, access in fn.accesses.items():
        program_kinds.add(access[0])
    return program_kinds


def accesses_of(program, resolution, function, name):
    """Access kinds of every Identifier/Declarator named *name* in *function*."""

    from repro.lang.ast_nodes import Declarator, Identifier

    fn_resolution = resolution.for_function(function)
    out = []
    for node in program.functions[function].walk():
        if isinstance(node, Identifier) and node.name == name:
            out.append(fn_resolution.access(node.node_id))
        elif isinstance(node, Declarator) and node.name == name:
            out.append(fn_resolution.access(node.node_id))
    return out


class TestResolutionRules:
    def test_plain_locals_get_slots(self):
        program, resolution = resolution_for("""
            int main() { int a = 1; int b = a + 2; return a + b; }
        """)
        main = resolution.for_function("main")
        assert main.nlocals == 2
        assert main.slot_names == ["a", "b"]
        assert main.elide_scopes
        assert not main.fallback_names

    def test_parameters_get_the_first_slots(self):
        program, resolution = resolution_for("""
            int add(int x, int y) { int s = x + y; return s; }
            int main() { return add(1, 2); }
        """)
        add = resolution.for_function("add")
        assert add.param_slots == [0, 1]
        assert add.slot_names[:2] == ["x", "y"]

    def test_read_before_write_falls_back(self):
        # `x` is read before any declaration: the read must keep raising the
        # interpreter's "undefined variable" error, so every access of `x`
        # stays on the named-cell path.
        program, resolution = resolution_for("""
            int main() { int y = x + 1; x = 2; return y; }
        """)
        assert "x" in resolution.for_function("main").fallback_names
        assert all(a == (NAMED,)
                   for a in accesses_of(program, resolution, "main", "x"))
        assert not resolution.for_function("main").elide_scopes

    def test_read_before_write_of_global_resolves_global(self):
        program, resolution = resolution_for("""
            int counter = 5;
            int main() { int y = counter + 1; counter = y; return counter; }
        """)
        main = resolution.for_function("main")
        assert "counter" not in main.fallback_names
        assert all(a == (GLOBAL,)
                   for a in accesses_of(program, resolution, "main", "counter"))
        # Global accesses do not block slotting of the real locals.
        assert main.elide_scopes and "y" in main.slot_names

    def test_same_name_in_sibling_functions_gets_independent_slots(self):
        program, resolution = resolution_for("""
            int first() { int n = 1; return n; }
            int second(int n) { n = n + 1; return n; }
            int main() { return first() + second(2); }
        """)
        assert resolution.for_function("first").slot_names == ["n"]
        assert resolution.for_function("second").slot_names == ["n"]
        assert resolution.for_function("first").nlocals == 1
        assert resolution.for_function("second").nlocals == 1

    def test_shadowing_across_blocks_gets_two_slots(self):
        program, resolution = resolution_for("""
            int main() {
                int x = 1;
                { int x = 2; x = x + 1; }
                return x;
            }
        """)
        main = resolution.for_function("main")
        assert main.slot_names == ["x", "x"]
        assert "x" not in main.fallback_names
        # Outer return reads slot 0; inner accesses use slot 1.
        accesses = accesses_of(program, resolution, "main", "x")
        assert (SLOT, 0) in accesses and (SLOT, 1) in accesses

    def test_shadowing_inside_if_and_while_bodies(self):
        program, resolution = resolution_for("""
            int main(int argc, char **argv) {
                int x = 1;
                if (argc > 1) { int x = 10; x = x + 1; }
                while (x < 4) { int x = 99; x = x - 1; }
                x = x + 1;
                return x;
            }
        """)
        main = resolution.for_function("main")
        assert "x" not in main.fallback_names
        assert main.slot_names.count("x") == 3  # outer + if body + while body

    def test_conditional_implicit_declaration_falls_back(self):
        # Whether `x` exists after the `if` depends on the branch taken:
        # reads cannot be resolved statically.
        program, resolution = resolution_for("""
            int main(int argc, char **argv) {
                if (argc > 1) x = 1;
                return x;
            }
        """)
        assert "x" in resolution.for_function("main").fallback_names

    def test_conditional_then_unconditional_store_is_slotted(self):
        # After the unconditional `x = 2;` both paths denote the same
        # variable (same innermost scope, no outer binding), so `x` can
        # still live in a slot.
        program, resolution = resolution_for("""
            int main(int argc, char **argv) {
                if (argc > 1) x = 1;
                x = 2;
                return x;
            }
        """)
        main = resolution.for_function("main")
        assert "x" not in main.fallback_names
        assert "x" in main.slot_names

    def test_block_scoped_implicit_local_dies_with_its_block(self):
        # `t` is implicitly declared inside the block, so the read after the
        # block would be an undefined-variable error at run time.
        program, resolution = resolution_for("""
            int main() {
                { t = 5; }
                return t;
            }
        """)
        assert "t" in resolution.for_function("main").fallback_names

    def test_address_of_local_keeps_its_slot(self):
        program, resolution = resolution_for("""
            int main() { int x = 3; int *p = &x; *p = 7; return x; }
        """)
        main = resolution.for_function("main")
        assert "x" in main.slot_names and "p" in main.slot_names
        assert main.elide_scopes

    def test_fully_slotted_function_elides_scope_opcodes(self):
        program, _ = resolution_for("""
            int main() { int total = 0; int i;
                for (i = 0; i < 4; i = i + 1) { total = total + i; }
                return total; }
        """)
        compiled = compile_program(program)
        opcodes = [instr[0] for instr in compiled.main.instructions]
        assert op.SCOPE_PUSH not in opcodes and op.SCOPE_POP not in opcodes
        unresolved = compile_program(program, resolve=False)
        named = [instr[0] for instr in unresolved.main.instructions]
        assert op.SCOPE_PUSH in named and op.SCOPE_POP in named

    def test_fallback_function_keeps_scope_opcodes(self):
        program, resolution = resolution_for("""
            int main(int argc, char **argv) {
                if (argc > 1) late = 1;
                { int inner = late + 1; }
                return 0;
            }
        """)
        assert not resolution.for_function("main").elide_scopes
        compiled = compile_program(program)
        opcodes = [instr[0] for instr in compiled.main.instructions]
        assert op.SCOPE_PUSH in opcodes and op.SCOPE_POP in opcodes

    def test_duplicate_parameter_names_fall_back(self):
        # The last argument wins at run time (both backends agree); the
        # resolver must not try to slot the collapsed binding.
        source = "int f(int a, int a) { return a; }\nint main() { return f(1, 2); }"
        program, resolution = resolution_for(source)
        assert "a" in resolution.for_function("f").fallback_names
        fingerprints = {}
        for backend, regalloc in (("interp", True), ("vm", True), ("vm", False)):
            executor = create_backend(
                program, config=ExecutionConfig(
                    backend=backend, register_allocation=regalloc))
            result = executor.run(["dup"])
            fingerprints[(backend, regalloc)] = (result.exit_code, result.steps,
                                                 result.crashed)
        assert len(set(fingerprints.values())) == 1
        assert fingerprints[("interp", True)][0] == 2  # last argument wins

    def test_cache_key_separates_resolver_versions(self):
        program, _ = resolution_for("int main() { int a = 1; return a; }")
        resolved = compile_program(program)
        unresolved = compile_program(program, resolve=False)
        assert resolved is not unresolved
        assert resolved.resolver_version == RESOLVER_VERSION
        assert unresolved.resolver_version == 0
        assert compile_program(program) is resolved
        assert compile_program(program, resolve=False) is unresolved


# ---------------------------------------------------------------------------
# Differential fuzzing: resolved vs named-cell vs interpreter
# ---------------------------------------------------------------------------


class _SnippetGenerator:
    """Random MiniC snippets biased toward scope-resolution edge cases."""

    NAMES = ["a", "b", "c", "d", "x", "y"]

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.loop_id = 0

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.35:
            return str(rng.randint(0, 9))
        if roll < 0.7:
            return rng.choice(self.NAMES)
        operator = rng.choice(["+", "-", "*", "<", "<=", "==", "!=", ">"])
        return (f"({self.expr(depth + 1)} {operator} {self.expr(depth + 1)})")

    def statement(self, depth: int = 0, allow_loop: bool = True) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 3:
            roll = min(roll, 0.59)  # leaf statements only
        if not allow_loop and roll >= 0.80:
            # The loop production expands to two statements (guard decl +
            # while) and is only legal where a statement list is.
            roll = rng.random() * 0.8
        if roll < 0.22:
            return f"int {rng.choice(self.NAMES)} = {self.expr()};"
        if roll < 0.50:
            # Plain assignment: may implicitly declare, assign an outer
            # binding, or hit an undefined name (a legitimate crash).
            return f"{rng.choice(self.NAMES)} = {self.expr()};"
        if roll < 0.60:
            return f'printf("%d ", {rng.choice(self.NAMES)});'
        if roll < 0.80:
            body = self.block(depth + 1) if rng.random() < 0.7 \
                else self.statement(depth + 1, allow_loop=False)
            if rng.random() < 0.5:
                alt = self.block(depth + 1) if rng.random() < 0.5 \
                    else self.statement(depth + 1, allow_loop=False)
                return f"if ({self.expr()}) {body} else {alt}"
            return f"if ({self.expr()}) {body}"
        # Bounded loop: a dedicated counter guards termination while the
        # body stays free to mutate anything.
        self.loop_id += 1
        guard = f"g{self.loop_id}"
        body = self.block(depth + 1, extra=f"{guard} = {guard} + 1;")
        return (f"int {guard} = 0; "
                f"while (({guard} < {self.rng.randint(1, 4)}) "
                f"&& {self.expr()}) {body}")

    def block(self, depth: int, extra: str = "") -> str:
        count = self.rng.randint(1, 3)
        body = " ".join(self.statement(depth) for _ in range(count))
        return "{ " + extra + " " + body + " }"

    def program(self) -> str:
        rng = self.rng
        parts = []
        if rng.random() < 0.5:
            parts.append(f"int ga = {rng.randint(0, 9)};")
        if rng.random() < 0.3:
            parts.append("int gb = 0;")
        helper = ""
        if rng.random() < 0.6:
            helper_body = " ".join(self.statement(1)
                                   for _ in range(rng.randint(1, 3)))
            parts.append("int helper(int a, int n) { "
                         + helper_body + " return a + n; }")
            helper = "x = helper(x, 2);"
        main_body = []
        main_body.append(f"int x = atoi(argv[1]);")
        for _ in range(rng.randint(2, 5)):
            main_body.append(self.statement(0))
        if helper and rng.random() < 0.8:
            main_body.insert(rng.randint(1, len(main_body)), helper)
        main_body.append('printf("end %d\\n", x);')
        main_body.append("return x;")
        parts.append("int main(int argc, char **argv) { "
                     + " ".join(main_body) + " }")
        return "\n".join(parts)


def run_fingerprint(program: Program, backend: str,
                    register_allocation: bool,
                    specialize: bool = True) -> tuple:
    recorder = TraceRecorder()
    executor = create_backend(
        program,
        kernel=simple_environment(["fuzz", "7"], name="fuzz").make_kernel(),
        hooks=recorder,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend=backend,
                               max_steps=60_000,
                               register_allocation=register_allocation,
                               specialize_ints=specialize,
                               synth_superinstructions=specialize),
    )
    result = executor.run(["fuzz", "7"])
    crash = None
    if result.crash is not None:
        crash = (result.crash.function, result.crash.line, result.crash.message)
    events = [(event.location, event.taken, event.symbolic,
               str(event.condition), event.index)
              for event in recorder.events]
    return (result.exit_code, result.steps, result.branch_executions,
            result.symbolic_branch_executions, result.syscall_count,
            result.crashed, crash, result.step_limit_hit, result.stdout,
            events)


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_resolution_parity(seed):
    """Resolved VM == named-cell VM == interpreter on random snippets."""

    rng = random.Random(20260730 + seed)
    for iteration in range(12):
        source = _SnippetGenerator(rng).program()
        program = Program.from_source(source, name=f"fuzz-{seed}-{iteration}")
        resolved = run_fingerprint(program, "vm", True)
        named = run_fingerprint(program, "vm", False)
        interp = run_fingerprint(program, "interp", True)
        assert resolved == named == interp, source


# ---------------------------------------------------------------------------
# Fuzzed adaptive-specialization parity: the unboxed/quickened/synthesized
# VM is observably identical to the generic slot VM and the interpreter —
# same steps, branch events, syscalls, crash sites and stdout — and the
# replay search it drives explores the identical fan-out.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_specialization_parity(seed):
    """Specialized VM == generic slot VM == interpreter on random snippets.

    The generator leans into the specializer's risk surface: implicitly
    declared ints, shadowing (slot reuse across sibling blocks), loops
    (warm-up triggers fire mid-run), symbolic ``atoi`` input flowing into
    compare-and-branch sites, and undefined-name crashes (crash-site parity
    through fused superinstructions).
    """

    rng = random.Random(20260807 + seed)
    for iteration in range(10):
        source = _SnippetGenerator(rng).program()
        program = Program.from_source(
            source, name=f"spec-fuzz-{seed}-{iteration}")
        specialized = run_fingerprint(program, "vm", True, specialize=True)
        generic = run_fingerprint(program, "vm", True, specialize=False)
        interp = run_fingerprint(program, "interp", True)
        assert specialized == generic == interp, source


def _fanout_fingerprint(outcome) -> tuple:
    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced, outcome.runs, outcome.solver_calls,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


def _fuzz_replay_search(pipeline, recording, specialize: bool, workers: int,
                        worker_kind: str = "thread"):
    from repro.core.config import ReplayBudget
    from repro.replay.engine import ReplayEngine

    engine = ReplayEngine(
        program=pipeline.program,
        plan=recording.plan,
        bitvector=recording.bitvector,
        syscall_log=(recording.syscall_log
                     if recording.plan.log_syscalls else None),
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        # Run-count bounded so the termination point is deterministic
        # across substrates and machines.
        budget=ReplayBudget(max_runs=24, max_seconds=600),
        backend="vm",
        workers=workers,
        worker_kind=worker_kind,
        specialize_ints=specialize,
        synth_superinstructions=specialize,
    )
    return engine.reproduce()


def _fanout_source(seed: int) -> str:
    """A fuzzed program whose crash depends on symbolic input.

    The generated body (over pre-declared names, so it cannot crash on its
    own) stirs the specialization tiers — int arithmetic, loops, branches
    on the symbolic char ``x`` — while the guarded undefined-name crash on
    the second symbolic char ``q`` (a name the generator never uses) only
    fires for part of the input space: recorded ``'E'`` crashes, the
    scaffolded replay input does not, so the search must fan out and solve
    its way back to the crash.
    """

    rng = random.Random(20260808 + seed)
    generator = _SnippetGenerator(rng)
    body = " ".join(generator.statement(1, allow_loop=True)
                    for _ in range(4))
    return ("int main(int argc, char **argv) { "
            "int a = 0; int b = 1; int c = 2; int d = 3; int y = 4; "
            "char *arg = argv[1]; int x = arg[0]; int q = arg[1]; "
            + body +
            " if ((q > 67) && (q < 75)) { q = boom + 1; } "
            'printf("end %d %d\\n", q, x); return q; }')


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_specialization_replay_fanout(seed):
    """The replay search fans out identically with specialization on or off.

    Record once, then search the recorded crash with specialization off
    (serial), on (serial), and on across a process pool — every
    configuration must explore the identical run tree: same run count,
    per-run outcomes, consumed bits, deviation points, solver calls and
    found input.
    """

    from repro.core.pipeline import Pipeline
    from repro.instrument.methods import InstrumentationMethod

    source = _fanout_source(seed)
    pipeline = Pipeline.from_source(source, name=f"spec-fan-{seed}")
    environment = simple_environment(["fuzz", "EE"], name="fuzz")
    plan = pipeline.make_plan(InstrumentationMethod.NONE,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    assert recording.crash_site is not None, source
    reference = _fanout_fingerprint(
        _fuzz_replay_search(pipeline, recording, False, 1))
    assert reference[0], source  # the generic search reproduces the crash
    assert reference[1] >= 2, source  # ...and really fanned out to do so
    serial = _fanout_fingerprint(
        _fuzz_replay_search(pipeline, recording, True, 1))
    assert serial == reference, source
    threaded = _fanout_fingerprint(
        _fuzz_replay_search(pipeline, recording, True, 2, "thread"))
    assert threaded == reference, source
    # Process workers rebuild the engine from a pickled spec in their own
    # interpreters; the specialization knobs must survive the round-trip
    # and commit the same serial pop order.
    pooled = _fanout_fingerprint(
        _fuzz_replay_search(pipeline, recording, True, 2, "process"))
    assert pooled == reference, source
