"""repro.telemetry: registry semantics, determinism contract, shims, CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro import (
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
)
from repro.replay.engine import ReplayEngine
from repro.service import ReproService
from repro.service.config import ReproConfig, TelemetrySection
from repro.service.service import ServiceStats, outcome_fingerprint
from repro.telemetry import (
    COUNT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    RegistrySnapshot,
    SECONDS_BUCKETS,
    active,
    disable,
    enable,
    read_jsonl,
    render_summary,
    scoped,
    span,
    write_jsonl,
)
from repro.vm import compiler as vm_compiler
from repro.workloads import workload_registry

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BUDGET = ReplayBudget(max_runs=400, max_seconds=60)


def _pipeline_for(name, **overrides):
    source, environment, library = workload_registry()[name]
    config = PipelineConfig(backend="vm", library_functions=set(library),
                            replay_budget=BUDGET, **overrides)
    pipeline = Pipeline.from_source(source, name=name, config=config,
                                    library_functions=set(library))
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    return pipeline, plan, environment


def _search(pipeline, recording, *, telemetry, workers=1, kind="thread",
            profile=False):
    engine = ReplayEngine(
        program=pipeline.program, plan=recording.plan,
        bitvector=recording.bitvector, syscall_log=recording.syscall_log,
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        budget=BUDGET, backend="vm", workers=workers, worker_kind=kind,
        telemetry=telemetry, profile_opcodes=profile)
    return engine.reproduce()


# ---------------------------------------------------------------------------
# Registry unit semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(7)
        snap = registry.snapshot()
        assert snap.counters["a"] == 5
        assert snap.gauges["g"] == 7

    def test_histogram_buckets_upper_inclusive_with_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 10, 100))
        for value in (0, 1, 2, 10, 11, 100, 101, 10_000):
            hist.observe(value)
        assert hist.counts == [2, 2, 2, 2]  # <=1, <=10, <=100, overflow
        assert hist.count == 8
        assert hist.sum == 0 + 1 + 2 + 10 + 11 + 100 + 101 + 10_000

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", buckets=(5, 1))

    def test_merge_is_exact_bucketwise_addition(self):
        parts = []
        for chunk in ((1, 7, 300), (2, 40, 9_999)):
            registry = MetricsRegistry()
            for value in chunk:
                registry.histogram("h", buckets=(1, 10, 100)).observe(value)
            registry.counter("c").inc(len(chunk))
            parts.append(registry.snapshot())
        serial = MetricsRegistry()
        for value in (1, 7, 300, 2, 40, 9_999):
            serial.histogram("h", buckets=(1, 10, 100)).observe(value)
        serial.counter("c").inc(6)
        merged = parts[0].merge(parts[1])
        assert merged.canonical_bytes() == serial.snapshot().canonical_bytes()

    def test_merge_rejects_differing_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="boundaries"):
            a.snapshot().merge(b.snapshot())
        with pytest.raises(ValueError, match="boundaries"):
            a.merge_snapshot(b.snapshot())

    def test_deterministic_drops_timing_metrics_and_spans(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc()
        registry.counter("wall", timing=True).inc()
        registry.histogram("lat", buckets=SECONDS_BUCKETS,
                           timing=True).observe(0.5)
        with scoped(registry):
            with span("op"):
                pass
        snap = registry.snapshot()
        assert "wall" in snap.counters and snap.spans
        det = snap.deterministic()
        assert set(det.counters) == {"keep"}
        assert not det.histograms
        assert not det.spans

    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(12)
        path = str(tmp_path / "sink.jsonl")
        write_jsonl(path, registry.snapshot(), context={"run": 1},
                    append=False)
        write_jsonl(path, registry.snapshot(), context={"run": 2})
        records = read_jsonl(path)
        assert len(records) == 4
        assert {r["run"] for r in records} == {1, 2}
        counter = next(r for r in records if r["type"] == "counter")
        assert counter["name"] == "c" and counter["value"] == 3
        hist = next(r for r in records if r["type"] == "histogram")
        assert hist["buckets"] == list(COUNT_BUCKETS)
        assert sum(hist["counts"]) == hist["count"] == 1
        rendered = render_summary(records)
        assert "c = 3" in rendered and "histograms:" in rendered


class TestRuntime:
    def test_default_is_shared_noop(self):
        assert active() is NULL_REGISTRY
        assert not active().enabled
        # No-ops must absorb the full instrument API without state.
        active().counter("x").inc()
        active().gauge("x").set(3)
        active().histogram("x").observe(1)
        assert active().snapshot().counters == {}

    def test_scoped_overrides_global(self):
        registry = MetricsRegistry()
        outer = MetricsRegistry()
        enable(outer)
        try:
            assert active() is outer
            with scoped(registry):
                assert active() is registry
                registry.counter("in").inc()
            assert active() is outer
        finally:
            disable()
        assert active() is NULL_REGISTRY
        assert registry.snapshot().counters == {"in": 1}

    def test_spans_nest_with_depth(self):
        registry = MetricsRegistry()
        with scoped(registry):
            with span("outer", kind="test"):
                with span("inner"):
                    pass
        spans = registry.snapshot().spans
        assert [(s.name, s.depth) for s in spans] == [("inner", 1),
                                                      ("outer", 0)]
        outer = spans[1]
        assert dict(outer.attrs) == {"kind": "test"}
        assert outer.seconds >= 0


# ---------------------------------------------------------------------------
# The determinism contract: telemetry never affects the explored set
# ---------------------------------------------------------------------------


class TestDifferentialOnOff:
    @pytest.mark.parametrize("name", sorted(workload_registry()))
    def test_every_workload_identical_with_telemetry_on(self, name):
        pipeline_off, plan_off, environment = _pipeline_for(name)
        recording_off = pipeline_off.record(plan_off, environment)
        pipeline_on, plan_on, _ = _pipeline_for(
            name, telemetry_enabled=True, profile_opcodes=True)
        recording_on = pipeline_on.record(plan_on, environment)
        # Recording: byte-identical bitvector, same execution.
        assert (recording_on.bitvector.to_bytes()
                == recording_off.bitvector.to_bytes())
        assert recording_on.execution.steps == recording_off.execution.steps
        assert ((recording_on.crash_site is None)
                == (recording_off.crash_site is None))
        # Replay: byte-identical explored tree and counters.
        off = _search(pipeline_off, recording_off, telemetry=False)
        on = _search(pipeline_on, recording_on, telemetry=True, profile=True)
        assert outcome_fingerprint(on) == outcome_fingerprint(off)
        assert on.stats() == off.stats()
        assert off.telemetry is None
        assert on.telemetry is not None
        assert on.telemetry.counters["replay.runs"] == off.runs

    def test_worker_merge_byte_identical(self):
        # Satellite: histogram merging across thread and process workers is
        # byte-identical to serial, on a server workload and a diff workload.
        for name in ("userver-exp2", "diff-exp1"):
            pipeline, plan, environment = _pipeline_for(
                name, telemetry_enabled=True)
            recording = pipeline.record(plan, environment)
            serial = _search(pipeline, recording, telemetry=True, workers=1)
            base = serial.telemetry.deterministic().canonical_bytes()
            for workers, kind in ((2, "thread"), (4, "thread"),
                                  (2, "process")):
                out = _search(pipeline, recording, telemetry=True,
                              workers=workers, kind=kind)
                assert (out.telemetry.deterministic().canonical_bytes()
                        == base), (name, workers, kind)
                assert (outcome_fingerprint(out)
                        == outcome_fingerprint(serial)), (name, workers, kind)

    def test_profiled_vm_execution_parity(self):
        pipeline, plan, environment = _pipeline_for(
            "fibonacci-a", telemetry_enabled=True, profile_opcodes=True)
        registry = MetricsRegistry()
        with scoped(registry):
            recording = pipeline.record(plan, environment)
        baseline_pipeline, baseline_plan, _ = _pipeline_for("fibonacci-a")
        baseline = baseline_pipeline.record(baseline_plan, environment)
        assert recording.execution.steps == baseline.execution.steps
        assert (recording.bitvector.to_bytes()
                == baseline.bitvector.to_bytes())
        counters = registry.snapshot().counters
        opcode_counts = {k: v for k, v in counters.items()
                         if k.startswith("vm.opcode.")}
        assert opcode_counts, "profiler published no opcode counts"
        # Plan-specialized code splits logged vs bare branches by opcode.
        assert any(k in opcode_counts for k in ("vm.opcode.BRANCH_LOGGED",
                                                "vm.opcode.BINOP_FF_BRANCH_LOGGED"))


# ---------------------------------------------------------------------------
# Shims: the legacy accessors stay truthful
# ---------------------------------------------------------------------------


class TestShims:
    def test_cache_stats_shim_and_registry_mirror(self):
        before = vm_compiler.cache_stats()
        registry = MetricsRegistry()
        pipeline, plan, environment = _pipeline_for("fibonacci-b")
        with scoped(registry):
            pipeline.record(plan, environment)
        after = vm_compiler.cache_stats()
        lookups = (after["hits"] + after["misses"]
                   - before["hits"] - before["misses"])
        counters = registry.snapshot().counters
        mirrored = (counters.get("vm.compile_cache.hits", 0)
                    + counters.get("vm.compile_cache.misses", 0))
        assert lookups == mirrored > 0
        assert "vm.compile_cache.misses" in registry.snapshot().timing_names \
            or "vm.compile_cache.hits" in registry.snapshot().timing_names

    def test_cache_scope_still_counts(self):
        pipeline, plan, environment = _pipeline_for("fibonacci-a")
        with vm_compiler.cache_scope() as events:
            pipeline.record(plan, environment)
        assert events["hits"] + events["misses"] > 0

    def test_service_stats_round_trip(self, tmp_path):
        stats = ServiceStats(searches_run=2, reports_fanned_out=5)
        payload = stats.to_json()
        assert payload["dedup_ratio"] == 2.5
        empty = ServiceStats()
        assert empty.dedup_ratio is None
        assert "dedup_ratio" not in empty.to_json()
        assert json.loads(json.dumps(empty.to_json())) == empty.to_json()

    def test_replay_outcome_stats_keys_stable(self):
        pipeline, plan, environment = _pipeline_for("diff-exp1")
        recording = pipeline.record(plan, environment)
        off = _search(pipeline, recording, telemetry=False)
        on = _search(pipeline, recording, telemetry=True)
        assert sorted(off.stats()) == sorted(on.stats())
        assert off.stats() == on.stats()


# ---------------------------------------------------------------------------
# Service + config + CLI integration
# ---------------------------------------------------------------------------


def _record_trace(name, path):
    pipeline, plan, environment = _pipeline_for(name)
    pipeline.record_trace(plan, environment, str(path))


class TestServiceTelemetry:
    def test_ingest_latency_and_sink(self, tmp_path):
        trace = tmp_path / "a.trace"
        _record_trace("diff-exp1", trace)
        sink = tmp_path / "sink.jsonl"
        config = ReproConfig(telemetry=TelemetrySection(
            enabled=True, jsonl_path=str(sink)))
        with ReproService(str(tmp_path / "svc"), config=config) as service:
            session = service.session("test")
            session.ingest_file(str(trace))
            session.ingest_file(str(trace))
            reports = service.process()
            assert all(r.reproduced for r in reports.values())
            snap = session.telemetry()
        assert snap.counters["service.searches_run"] == 1
        assert snap.counters["service.reports_fanned_out"] == 2
        assert snap.counters["service.duplicate_traces"] == 1
        latency = snap.histograms["service.ingest_latency"]
        assert latency[2] == 2  # both traces measured ingest->report
        assert "service.ingest_latency" in snap.timing_names
        assert any(s.name == "replay.search" for s in snap.spans)
        records = read_jsonl(str(sink))
        assert any(r.get("name") == "service.ingest_latency"
                   for r in records)

    def test_stats_identical_with_telemetry_on_and_off(self, tmp_path):
        trace = tmp_path / "a.trace"
        _record_trace("userver-exp1", trace)
        results = {}
        for label, section in (("off", TelemetrySection()),
                               ("on", TelemetrySection(enabled=True))):
            root = tmp_path / f"svc-{label}"
            with ReproService(str(root),
                              config=ReproConfig(telemetry=section)) as svc:
                svc.ingest_file(str(trace))
                reports = svc.process()
                results[label] = (svc.stats(), reports)
        stats_on, stats_off = results["on"][0], results["off"][0]
        on_json, off_json = stats_on.to_json(), stats_off.to_json()
        on_json.pop("process_wall_seconds")
        off_json.pop("process_wall_seconds")
        assert on_json == off_json
        fingerprints = [
            {tid: r.fingerprint() for tid, r in reports.items()}
            for _stats, reports in results.values()]
        assert fingerprints[0] == fingerprints[1]


class TestConfigTelemetrySection:
    def test_dict_round_trip(self):
        config = ReproConfig.from_dict({
            "telemetry": {"enabled": True, "profile_vm": True,
                          "jsonl_path": "/tmp/sink.jsonl"}})
        assert config.telemetry.enabled
        assert config.telemetry.profile_vm
        assert config.to_dict()["telemetry"]["jsonl_path"] == "/tmp/sink.jsonl"
        again = ReproConfig.from_dict(config.to_dict())
        assert again.to_dict() == config.to_dict()

    def test_unknown_telemetry_key_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            ReproConfig.from_dict({"telemetry": {"enabld": True}})

    def test_legacy_round_trip_carries_telemetry(self):
        legacy = PipelineConfig(telemetry_enabled=True, profile_opcodes=True)
        layered = ReproConfig.from_legacy(legacy)
        assert layered.telemetry.enabled
        assert layered.telemetry.profile_vm
        back = layered.to_pipeline_config()
        assert back.telemetry_enabled and back.profile_opcodes
        assert layered.execution_config().profile_opcodes


class TestCli:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)

    def test_info_telemetry_sections_and_crc(self, tmp_path):
        trace = tmp_path / "a.trace"
        _record_trace("fibonacci-a", trace)
        proc = self._run("info", "--trace", str(trace), "--telemetry")
        assert proc.returncode == 0, proc.stderr
        records = [json.loads(line) for line in proc.stdout.splitlines()]
        sections = [r for r in records if r["type"] == "trace_section"]
        total = next(r for r in records if r["type"] == "trace_total")
        assert [s["name"] for s in sections] == ["META", "PLAN", "BITV",
                                                "SYSC", "CRSH", "ENVS"]
        assert all(r["crc_ok"] for r in records)
        assert (sum(s["bytes"] for s in sections) + 12 * len(sections)
                + total["header_bytes"] == total["total_bytes"])

    def test_serve_batch_telemetry_then_stats(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        _record_trace("diff-exp1", spool / "u1.trace")
        _record_trace("diff-exp1", spool / "u2.trace")
        sink = tmp_path / "sink.jsonl"
        proc = self._run("serve-batch", "--root", str(tmp_path / "inbox"),
                         "--spool", str(spool), "--telemetry",
                         "--telemetry-jsonl", str(sink))
        assert proc.returncode == 0, proc.stderr
        records = read_jsonl(str(sink))
        assert any(r.get("name") == "service.ingest_latency" for r in records)
        rendered = self._run("stats", "--jsonl", str(sink))
        assert rendered.returncode == 0, rendered.stderr
        assert "service.ingest_latency" in rendered.stdout
