"""Checkpoint/resume at the engine level: byte-identity from any boundary.

The load-bearing contract of the checkpoint subsystem: a search preempted
at an **arbitrary** commit boundary and resumed from its snapshot explores
exactly the search tree the uninterrupted run explores — same explored
set, same found input, same run records, same deterministic telemetry.
This holds by construction (serial pop-order commit discipline: the
(pending, outcome) pair at a commit boundary fully determines the rest of
the search), and these tests pin the construction down for every boundary
of several differential-testing workloads.

Corruption is the other half: a damaged snapshot must surface as a loud
typed :class:`CheckpointFormatError`, never as a silently wrong resume.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import InstrumentationMethod, ReplayBudget
from repro.replay import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointPolicy,
    ReplayEngine,
    WorkerCrashError,
    load_checkpoint,
    save_checkpoint,
)
from repro.replay.checkpoint import (
    SearchCheckpoint,
    dump_checkpoint_bytes,
    load_checkpoint_bytes,
)
from repro.service import FaultSpec, ReproConfig, outcome_fingerprint, workload_pipeline
from repro.trace import trace_from_recording


def _record(workload: str):
    """``(pipeline, trace)`` for one recorded crash of *workload*."""

    config = ReproConfig()
    config.execution.backend = "vm"
    pipeline, environment = workload_pipeline(workload, config=config)
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    return pipeline, trace_from_recording(recording, scaffold=True,
                                          program_name=workload)


def _engine(pipeline, trace, **kwargs):
    kwargs.setdefault("budget", ReplayBudget(max_runs=1500, max_seconds=60))
    return ReplayEngine.from_trace(pipeline.program, trace, **kwargs)


@pytest.fixture(scope="module")
def mkdir_case():
    return _record("mkdir-bug")


@pytest.fixture(scope="module")
def diff_case():
    return _record("diff-exp1")


class TestSnapshotCodec:
    def test_roundtrip_preserves_every_field(self, tmp_path, mkdir_case):
        pipeline, trace = mkdir_case
        engine = _engine(pipeline, trace)
        path = str(tmp_path / "probe.ckpt")
        engine.attach_checkpointing(
            CheckpointPolicy(path=path, preempt_after_commits=1))
        paused = engine.reproduce()
        assert paused.preempted and paused.committed_items == 1

        ckpt = load_checkpoint(path)
        again = str(tmp_path / "again.ckpt")
        save_checkpoint(again, ckpt)
        reread = load_checkpoint(again)
        assert reread.commits == ckpt.commits == 1
        assert reread.elapsed_seconds == ckpt.elapsed_seconds
        # PendingItem carries ConstraintSet (identity equality); compare
        # the structural surface here and bytes below.
        assert len(reread.pending_items) == len(ckpt.pending_items)
        assert [(i.hint, i.depth, i.origin_run, i.reason)
                for i in reread.pending_items] == \
               [(i.hint, i.depth, i.origin_run, i.reason)
                for i in ckpt.pending_items]
        assert reread.seen_signatures == ckpt.seen_signatures
        assert (reread.dropped, reread.duplicates) == (ckpt.dropped,
                                                       ckpt.duplicates)
        # The contract that matters: resuming from the re-saved copy is
        # indistinguishable from resuming from the original.
        a = ReplayEngine.from_checkpoint(path).reproduce()
        b = ReplayEngine.from_checkpoint(again).reproduce()
        assert outcome_fingerprint(a) == outcome_fingerprint(b)

    def test_bytes_roundtrip_without_filesystem(self, mkdir_case, tmp_path):
        pipeline, trace = mkdir_case
        engine = _engine(pipeline, trace)
        path = str(tmp_path / "probe.ckpt")
        engine.attach_checkpointing(
            CheckpointPolicy(path=path, preempt_after_commits=1))
        engine.reproduce()
        ckpt = load_checkpoint(path)
        assert isinstance(ckpt, SearchCheckpoint)
        reread = load_checkpoint_bytes(dump_checkpoint_bytes(ckpt))
        assert reread.commits == ckpt.commits
        assert len(reread.pending_items) == len(ckpt.pending_items)
        assert reread.seen_signatures == ckpt.seen_signatures


class TestResumeByteIdentity:
    @pytest.mark.parametrize("workload", ["mkdir-bug", "mkfifo-bug",
                                          "paste-bug", "diff-exp1"])
    def test_resume_from_every_commit_boundary(self, tmp_path, workload):
        pipeline, trace = _record(workload)
        baseline = _engine(pipeline, trace).reproduce()
        assert baseline.reproduced
        want = outcome_fingerprint(baseline)
        boundaries = baseline.committed_items
        assert boundaries >= 2, "workload too small to exercise resume"

        for cut in range(1, boundaries):
            path = str(tmp_path / f"{workload}.{cut}.ckpt")
            engine = _engine(pipeline, trace)
            engine.attach_checkpointing(
                CheckpointPolicy(path=path, preempt_after_commits=cut))
            paused = engine.reproduce()
            assert paused.preempted and not paused.reproduced
            assert paused.committed_items == cut
            assert os.path.exists(path)

            resumed = ReplayEngine.from_checkpoint(path).reproduce()
            assert resumed.reproduced and resumed.resumed
            assert outcome_fingerprint(resumed) == want, (
                f"{workload}: resume at commit {cut} diverged")
            assert resumed.committed_items == boundaries

    def test_resume_merges_telemetry_deterministically(self, tmp_path,
                                                       diff_case):
        pipeline, trace = diff_case
        baseline = _engine(pipeline, trace, telemetry=True).reproduce()
        assert baseline.reproduced and baseline.telemetry is not None
        want = baseline.telemetry.deterministic().canonical_bytes()

        cut = baseline.committed_items // 2
        path = str(tmp_path / "mid.ckpt")
        engine = _engine(pipeline, trace, telemetry=True)
        engine.attach_checkpointing(
            CheckpointPolicy(path=path, preempt_after_commits=cut))
        paused = engine.reproduce()
        # A pause is not a result: the preempted run records none of the
        # final outcome counters, so the resumed run counts them exactly
        # once and the merged registry equals the uninterrupted one.
        assert paused.preempted

        resumed = ReplayEngine.from_checkpoint(path).reproduce()
        assert outcome_fingerprint(resumed) == outcome_fingerprint(baseline)
        assert resumed.telemetry.deterministic().canonical_bytes() == want

    def test_request_preempt_checkpoints_at_next_commit(self, tmp_path,
                                                        mkdir_case):
        pipeline, trace = mkdir_case
        baseline = _engine(pipeline, trace).reproduce()
        path = str(tmp_path / "asked.ckpt")
        engine = _engine(pipeline, trace)
        engine.attach_checkpointing(CheckpointPolicy(path=path))
        engine.request_preempt()
        paused = engine.reproduce()
        assert paused.preempted and paused.committed_items == 1
        resumed = ReplayEngine.from_checkpoint(path).reproduce()
        assert outcome_fingerprint(resumed) == outcome_fingerprint(baseline)


class TestCorruption:
    def _checkpoint(self, tmp_path, case) -> str:
        pipeline, trace = case
        path = str(tmp_path / "victim.ckpt")
        engine = _engine(pipeline, trace)
        engine.attach_checkpointing(
            CheckpointPolicy(path=path, preempt_after_commits=1))
        engine.reproduce()
        return path

    def test_bad_magic_is_typed(self, tmp_path, mkdir_case):
        path = self._checkpoint(tmp_path, mkdir_case)
        data = bytearray(open(path, "rb").read())
        data[:8] = b"NOTACKPT"
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointFormatError):
            load_checkpoint(path)

    def test_truncation_is_typed(self, tmp_path, mkdir_case):
        path = self._checkpoint(tmp_path, mkdir_case)
        data = open(path, "rb").read()
        for cut in (0, 4, len(data) // 2, len(data) - 1):
            open(path, "wb").write(data[:cut])
            with pytest.raises(CheckpointFormatError):
                load_checkpoint(path)

    def test_payload_flip_fails_crc(self, tmp_path, mkdir_case):
        path = self._checkpoint(tmp_path, mkdir_case)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointFormatError):
            load_checkpoint(path)

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "never-written.ckpt"))

    def test_live_checkpoint_requires_running_search(self, mkdir_case):
        pipeline, trace = mkdir_case
        with pytest.raises(CheckpointError):
            _engine(pipeline, trace).checkpoint("/tmp/nowhere.ckpt")


class TestInjectedFaults:
    def test_checkpoint_write_failure_is_nonfatal(self, tmp_path, mkdir_case):
        # A failing checkpoint store must never take the search down with
        # it: every write fails, the search still completes identically,
        # and the failures are counted.
        pipeline, trace = mkdir_case
        baseline = _engine(pipeline, trace).reproduce()

        path = str(tmp_path / "doomed.ckpt")
        engine = _engine(pipeline, trace, telemetry=True)
        engine.attach_checkpointing(CheckpointPolicy(
            path=path, every_commits=1,
            fault_spec=FaultSpec(seed=3, checkpoint_fail_rate=1.0)))
        outcome = engine.reproduce()
        assert outcome.reproduced
        assert outcome_fingerprint(outcome) == outcome_fingerprint(baseline)
        assert not os.path.exists(path)
        counters = outcome.telemetry.to_json()["counters"]
        assert counters["replay.checkpoint.write_failures"] >= 1
        assert counters.get("replay.checkpoint.writes", 0) == 0

    def test_periodic_writes_are_counted(self, tmp_path, mkdir_case):
        pipeline, trace = mkdir_case
        path = str(tmp_path / "every.ckpt")
        engine = _engine(pipeline, trace, telemetry=True)
        engine.attach_checkpointing(CheckpointPolicy(path=path,
                                                     every_commits=1))
        outcome = engine.reproduce()
        assert outcome.reproduced and os.path.exists(path)
        counters = outcome.telemetry.to_json()["counters"]
        assert counters["replay.checkpoint.writes"] == outcome.committed_items
        # Timing-marked: checkpoint plumbing stays out of the deterministic
        # view so interrupted and uninterrupted runs stay byte-identical.
        det = outcome.telemetry.deterministic().to_json()["counters"]
        assert "replay.checkpoint.writes" not in det


def _die_evaluate(item):  # pool task stand-in: a worker hard-crash (OOM kill)
    os._exit(43)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="monkeypatched pool task needs fork inheritance")
def test_worker_process_death_raises_typed_error(monkeypatch, mkdir_case):
    from repro.replay import engine as engine_mod

    pipeline, trace = mkdir_case
    engine = _engine(pipeline, trace, workers=2, worker_kind="process",
                     telemetry=True)
    monkeypatch.setattr(engine_mod, "_process_worker_evaluate", _die_evaluate)
    with pytest.raises(WorkerCrashError) as excinfo:
        engine.reproduce()
    assert "worker process died" in str(excinfo.value)
    counters = engine._registry.snapshot().to_json()["counters"]
    assert counters["replay.worker_deaths"] == 1
