"""The network transport: framing, faults, backpressure, quotas, recovery.

The load-bearing contract mirrors the paper's deployment story: a fleet of
user machines ships bug reports over a flaky network, and under every fault
class — connection drops, truncated or corrupted payloads, slow-loris
stalls, queue-full overload, failing spool disks — no acknowledged trace is
ever lost or searched twice, damage lands in the bounded rejection ledger,
and healthy clients' reproduction reports stay byte-identical to the
single-shot ``Pipeline.reproduce_from_trace`` path.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import struct
import threading
import time

import pytest

from repro import InstrumentationMethod, ReplayBudget
from repro.service import (
    FaultInjector,
    FaultSpec,
    ReproConfig,
    SpoolJournal,
    TraceInbox,
    TraceTooLargeError,
    UploadClient,
    UploadFailed,
    UploadRejected,
    UploadServer,
    outcome_fingerprint,
    workload_pipeline,
)
from repro.service.inbox import (
    journaled_spool_write,
    partition_dirs,
    partition_index,
)
from repro.service.net import (
    OP_UPLOAD,
    ST_ACK,
    ST_ERROR,
    ST_RETRY,
    ProtocolError,
    _decode_request,
    _decode_response,
    _encode_request,
    _read_frame,
    _send_frame,
)
from repro.telemetry import MetricsRegistry
from repro.trace import dump_trace_bytes, trace_from_recording


def net_config(**service_overrides) -> ReproConfig:
    config = ReproConfig()
    config.execution.backend = "vm"
    config.replay.budget = ReplayBudget(max_runs=1500, max_seconds=60)
    for name, value in service_overrides.items():
        setattr(config.service, name, value)
    return config


def record_trace_bytes(workload: str) -> bytes:
    pipeline, environment = workload_pipeline(workload, config=net_config())
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    return dump_trace_bytes(trace_from_recording(recording, scaffold=True,
                                                 program_name=workload))


@pytest.fixture(scope="module")
def mkdir_bytes() -> bytes:
    return record_trace_bytes("mkdir-bug")


@pytest.fixture(scope="module")
def mkfifo_bytes() -> bytes:
    return record_trace_bytes("mkfifo-bug")


# ---------------------------------------------------------------------------
# framing and fault-spec units
# ---------------------------------------------------------------------------


class TestFraming:
    def test_request_roundtrip_carries_raw_body(self):
        payload = _encode_request(OP_UPLOAD, {"client": "c", "digest": "d"},
                                  b"\x00\xffbody")
        op, header, body = _decode_request(payload)
        assert (op, header, body) == (OP_UPLOAD,
                                      {"client": "c", "digest": "d"},
                                      b"\x00\xffbody")

    def test_oversized_declared_length_refused_before_buffering(self):
        left, right = socket.socketpair()
        try:
            # Declare 1 GiB; send only the length prefix.  The reader must
            # refuse from the declaration alone, without waiting for bytes.
            left.sendall(struct.pack("!I", 1 << 30))
            with pytest.raises(ProtocolError):
                _read_frame(right, max_length=1024)
        finally:
            left.close()
            right.close()

    def test_eof_between_frames_is_clean_mid_frame_is_error(self):
        left, right = socket.socketpair()
        try:
            _send_frame(left, b"ok")
            assert _read_frame(right, 1024) == b"ok"
            left.sendall(struct.pack("!I", 10) + b"short")
            left.close()
            with pytest.raises(ConnectionError):
                _read_frame(right, 1024)
        finally:
            right.close()

    def test_malformed_header_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            _decode_request(b"\x55\x00\x04not-json-at-all")
        with pytest.raises(ProtocolError):
            _decode_response(b"")


class TestFaultSpec:
    def test_json_roundtrip_and_unknown_key_rejection(self):
        spec = FaultSpec(seed=7, drop_rate=0.5,
                         crash_points=("net.after_ack",))
        assert FaultSpec.from_json(spec.to_json()) == spec
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultSpec.from_json({"drop_rte": 0.5})

    def test_same_seed_same_schedule(self):
        rolls = [FaultInjector(FaultSpec(seed=3, drop_rate=0.4))
                 for _ in range(2)]
        schedules = [[injector.roll("drop") for _ in range(64)]
                     for injector in rolls]
        assert schedules[0] == schedules[1]
        assert any(schedules[0]) and not all(schedules[0])
        assert rolls[0].counts()["drop"] == sum(schedules[0])

    def test_kind_streams_are_independent(self):
        lone = FaultInjector(FaultSpec(seed=3, drop_rate=0.4))
        mixed = FaultInjector(FaultSpec(seed=3, drop_rate=0.4,
                                        corrupt_rate=0.4))
        lone_drops = [lone.roll("drop") for _ in range(32)]
        mixed_drops = []
        for _ in range(32):
            mixed.roll("corrupt")  # must not perturb the drop stream
            mixed_drops.append(mixed.roll("drop"))
        assert lone_drops == mixed_drops

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(FaultSpec(seed=1))
        data = bytes(range(64))
        damaged = bytes(injector.corrupt(data))
        assert len(damaged) == len(data)
        assert sum(1 for a, b in zip(data, damaged) if a != b) == 1


# ---------------------------------------------------------------------------
# spool partitions and the crash-safe journal
# ---------------------------------------------------------------------------


class TestSpoolJournal:
    def test_partition_index_is_stable_and_in_range(self):
        keys = [f"{value:016x}" for value in range(50)]
        for partitions in (1, 4, 7):
            indexes = [partition_index(key, partitions) for key in keys]
            assert all(0 <= index < partitions for index in indexes)
            assert indexes == [partition_index(key, partitions)
                               for key in keys]
        assert len({partition_index(key, 4) for key in keys}) > 1

    def test_partition_dirs_created_and_named(self, tmp_path):
        dirs = partition_dirs(str(tmp_path / "spool"), 3)
        assert [os.path.basename(d) for d in dirs] == \
            ["part-00", "part-01", "part-02"]
        assert all(os.path.isdir(d) for d in dirs)

    def test_journaled_write_commits_and_recovery_is_idempotent(self, tmp_path):
        journal = SpoolJournal(str(tmp_path))
        final = str(tmp_path / "a.trace")
        journaled_spool_write(journal, final, b"payload")
        assert open(final, "rb").read() == b"payload"
        assert not os.path.exists(final + ".part")
        assert journal.recover() == {"a.trace": os.path.abspath(final)}
        assert journal.recover() == {"a.trace": os.path.abspath(final)}
        journal.close()

    def test_recover_commits_renamed_but_uncommitted_write(self, tmp_path):
        # Crash window: after os.replace, before the COMMIT record.
        journal = SpoolJournal(str(tmp_path))
        final = str(tmp_path / "b.trace")
        with open(final, "wb") as handle:
            handle.write(b"durable")
        journal.begin("b.trace", final)
        journal.close()
        fresh = SpoolJournal(str(tmp_path))
        assert fresh.recover() == {"b.trace": os.path.abspath(final)}
        assert open(final, "rb").read() == b"durable"
        fresh.close()

    def test_recover_deletes_orphan_temp_of_unacked_write(self, tmp_path):
        # Crash window: after the BEGIN record, before os.replace.
        journal = SpoolJournal(str(tmp_path))
        final = str(tmp_path / "c.trace")
        with open(final + ".part", "wb") as handle:
            handle.write(b"half")
        journal.begin("c.trace", final)
        journal.close()
        fresh = SpoolJournal(str(tmp_path))
        assert fresh.recover() == {}
        assert not os.path.exists(final + ".part")
        assert not os.path.exists(final)
        fresh.close()

    def test_recover_tolerates_torn_trailing_line(self, tmp_path):
        journal = SpoolJournal(str(tmp_path))
        final = str(tmp_path / "d.trace")
        journaled_spool_write(journal, final, b"ok")
        journal.close()
        with open(str(tmp_path / "journal.log"), "a") as handle:
            handle.write('{"op": "BEGIN", "key": "torn')  # no newline, torn
        fresh = SpoolJournal(str(tmp_path))
        assert fresh.recover() == {"d.trace": os.path.abspath(final)}
        fresh.close()


# ---------------------------------------------------------------------------
# inbox robustness satellites: size cap, grace poll, bounded ledger
# ---------------------------------------------------------------------------


class TestInboxRobustness:
    def test_ingest_bytes_enforces_max_trace_bytes(self, tmp_path,
                                                   mkdir_bytes):
        inbox = TraceInbox(str(tmp_path / "inbox"), max_trace_bytes=64)
        with pytest.raises(TraceTooLargeError, match="max_trace_bytes=64"):
            inbox.ingest_bytes(mkdir_bytes)
        assert inbox.describe()["traces"] == 0

    def test_poll_rejects_oversize_without_buffering(self, tmp_path,
                                                     mkdir_bytes):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "big.trace").write_bytes(mkdir_bytes)
        inbox = TraceInbox(str(tmp_path / "inbox"), max_trace_bytes=64)
        assert inbox.poll_spool(str(spool)) == []
        [(source, reason)] = inbox.rejected.items()
        assert source.endswith("big.trace")
        assert "TraceTooLargeError" in reason

    def test_partial_file_gets_grace_poll_not_rejection(self, tmp_path,
                                                        mkdir_bytes):
        spool = tmp_path / "spool"
        spool.mkdir()
        partial = spool / "inflight.trace"
        partial.write_bytes(mkdir_bytes[: len(mkdir_bytes) // 2])
        inbox = TraceInbox(str(tmp_path / "inbox"))
        # First poll: unparsable but fresh -> suspected, not rejected.
        assert inbox.poll_spool(str(spool)) == []
        assert inbox.rejected == {}
        # The writer appends more bytes (still short): changed -> retried.
        partial.write_bytes(mkdir_bytes[:-10])
        assert inbox.poll_spool(str(spool)) == []
        assert inbox.rejected == {}
        # The writer finishes: the completed file ingests normally.
        partial.write_bytes(mkdir_bytes)
        [result] = inbox.poll_spool(str(spool))
        assert result.trace_id and inbox.rejected == {}

    def test_unchanged_unparsable_file_rejected_on_second_poll(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "corrupt.trace").write_bytes(b"not a trace")
        inbox = TraceInbox(str(tmp_path / "inbox"))
        assert inbox.poll_spool(str(spool)) == []
        assert inbox.rejected == {}
        assert inbox.poll_spool(str(spool)) == []  # unchanged: two strikes
        [(source, _reason)] = inbox.rejected.items()
        assert source.endswith("corrupt.trace")

    def test_poll_descends_partition_dirs(self, tmp_path, mkdir_bytes,
                                          mkfifo_bytes):
        spool = str(tmp_path / "spool")
        parts = partition_dirs(spool, 4)
        open(os.path.join(parts[0], "a.trace"), "wb").write(mkdir_bytes)
        open(os.path.join(parts[3], "b.trace"), "wb").write(mkfifo_bytes)
        inbox = TraceInbox(str(tmp_path / "inbox"))
        results = inbox.poll_spool(spool)
        assert len(results) == 2
        assert inbox.poll_spool(spool) == []  # idempotent re-poll

    def test_rejection_ledger_is_bounded_and_counted(self, tmp_path):
        registry = MetricsRegistry()
        inbox = TraceInbox(str(tmp_path / "inbox"), max_rejected=3,
                           registry=registry)
        for index in range(5):
            inbox.reject(f"net:u{index}", TraceTooLargeError("too big"))
        assert list(inbox.rejected) == ["net:u2", "net:u3", "net:u4"]
        counters = registry.snapshot().counters
        assert counters["service.rejected.TraceTooLargeError"] == 5
        # The bound also applies to persisted state reloaded from disk.
        reloaded = TraceInbox(str(tmp_path / "inbox"), max_rejected=2)
        assert list(reloaded.rejected) == ["net:u3", "net:u4"]

    def test_reinsertion_moves_entry_to_newest(self, tmp_path):
        inbox = TraceInbox(str(tmp_path / "inbox"), max_rejected=2)
        inbox.reject("a", ValueError("x"))
        inbox.reject("b", ValueError("x"))
        inbox.reject("a", ValueError("y"))  # refreshed: now newest
        inbox.reject("c", ValueError("x"))  # evicts b, not a
        assert list(inbox.rejected) == ["a", "c"]


# ---------------------------------------------------------------------------
# the upload server end to end
# ---------------------------------------------------------------------------


def start_server(tmp_path, faults=None, **service_overrides):
    config = net_config(**service_overrides)
    return UploadServer(str(tmp_path / "svc"), config=config,
                        faults=faults).start()


class TestUploadServer:
    def test_upload_process_report_roundtrip(self, tmp_path, mkdir_bytes,
                                             mkfifo_bytes):
        with start_server(tmp_path) as server:
            alice = UploadClient(server.host, server.port, client_id="alice")
            bob = UploadClient(server.host, server.port, client_id="bob")
            first = alice.upload(mkdir_bytes)
            second = bob.upload(mkdir_bytes)
            third = alice.upload(mkfifo_bytes)
            # Same bug from two machines: two traces, one cluster.
            assert first.trace_id != second.trace_id
            assert first.cluster_id == second.cluster_id != third.cluster_id
            assert not first.duplicate and second.duplicate
            # Reports are pending until a process call runs the searches.
            assert alice.report(first.trace_id)["status"] == "pending"
            processed = alice.process()
            assert len(processed["reports"]) == 3
            assert processed["stats"]["searches_run"] == 2
            body = bob.wait_report(second.trace_id, timeout=5.0)
            assert body["status"] == "done"
            assert body["report"]["reproduced"]

    def test_reupload_same_content_is_idempotent(self, tmp_path, mkdir_bytes):
        with start_server(tmp_path) as server:
            client = UploadClient(server.host, server.port, client_id="ada")
            first = client.upload(mkdir_bytes)
            again = client.upload(mkdir_bytes)
            assert again.trace_id == first.trace_id
            assert again.duplicate_upload and not first.duplicate_upload
            with server._lock:
                described = server.service.inbox.describe()
            assert described["traces"] == 1  # not ingested twice
            counters = server.service.registry.snapshot().counters
            assert counters["service.net.duplicate_uploads"] == 1

    def test_reports_byte_identical_to_single_shot(self, tmp_path,
                                                   mkdir_bytes):
        with start_server(tmp_path) as server:
            client = UploadClient(server.host, server.port, client_id="u1")
            receipt = client.upload(mkdir_bytes)
            client.process()
            with server._lock:
                report = server.service.report(receipt.trace_id)
        path = tmp_path / "single.trace"
        path.write_bytes(mkdir_bytes)
        pipeline, _environment = workload_pipeline("mkdir-bug",
                                                   config=net_config())
        single = pipeline.reproduce_from_trace(str(path))
        assert report.fingerprint() == outcome_fingerprint(single.outcome)

    def test_oversize_upload_rejected_and_ledgered(self, tmp_path,
                                                   mkdir_bytes):
        cap = len(mkdir_bytes) - 1
        with start_server(tmp_path, max_trace_bytes=cap) as server:
            client = UploadClient(server.host, server.port, client_id="big")
            with pytest.raises(UploadRejected, match="too large"):
                client.upload(mkdir_bytes)
            with server._lock:
                [(source, reason)] = server.service.inbox.rejected.items()
            assert source.startswith("net:big:")
            assert "TraceTooLargeError" in reason

    def test_oversized_declared_frame_refused_from_length(self, tmp_path):
        # A raw socket declaring a frame far beyond the cap: the server must
        # answer with an error computed from the declaration alone and
        # ledger the attempt -- it never buffers the body.
        with start_server(tmp_path, max_trace_bytes=4096) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=5.0) as conn:
                conn.sendall(struct.pack("!I", 1 << 29))
                response = _read_frame(conn, 1 << 20)
                status, body = _decode_response(response)
            assert status == ST_ERROR
            assert "exceeds" in body["reason"]
            with server._lock:
                assert any(src.startswith("net:")
                           for src in server.service.inbox.rejected)
            counters = server.service.registry.snapshot().counters
            assert counters["service.net.protocol_errors"] == 1

    def test_garbage_with_valid_digest_is_permanently_rejected(self, tmp_path):
        garbage = b"this is not a trace" * 10
        with start_server(tmp_path) as server:
            client = UploadClient(server.host, server.port, client_id="p0")
            with pytest.raises(UploadRejected):
                client.upload(garbage)
            with server._lock:
                [(source, _reason)] = server.service.inbox.rejected.items()
            assert source.startswith("net:p0:")
            counters = server.service.registry.snapshot().counters
            assert sum(value for name, value in counters.items()
                       if name.startswith("service.rejected.")) == 1

    def test_digest_mismatch_is_retryable_not_ledgered(self, tmp_path,
                                                       mkdir_bytes):
        # Corruption in flight: same payload, wrong digest.  The server asks
        # for a resend; nothing lands in the ledger (the client is healthy).
        with start_server(tmp_path) as server:
            header = {"client": "c0",
                      "digest": hashlib.sha256(b"other").hexdigest()}
            with socket.create_connection((server.host, server.port),
                                          timeout=5.0) as conn:
                _send_frame(conn, _encode_request(OP_UPLOAD, header,
                                                  mkdir_bytes))
                status, body = _decode_response(_read_frame(conn, 1 << 20))
            assert status == ST_RETRY
            assert body["reason"] == "digest-mismatch"
            with server._lock:
                assert server.service.inbox.rejected == {}
            counters = server.service.registry.snapshot().counters
            assert counters["service.net.digest_mismatches"] == 1

    def test_client_quota_rejects_extra_reports_only(self, tmp_path,
                                                     mkdir_bytes,
                                                     mkfifo_bytes):
        with start_server(tmp_path, client_quota=1) as server:
            greedy = UploadClient(server.host, server.port, client_id="g")
            modest = UploadClient(server.host, server.port, client_id="m")
            first = greedy.upload(mkdir_bytes)
            # The same report again stays within quota (idempotent retry)...
            assert greedy.upload(mkdir_bytes).trace_id == first.trace_id
            # ...a second distinct report does not.
            with pytest.raises(UploadRejected, match="quota"):
                greedy.upload(mkfifo_bytes)
            # Healthy clients keep their bandwidth.
            assert modest.upload(mkfifo_bytes).trace_id
            with server._lock:
                assert any("QuotaExceeded" in reason for reason in
                           server.service.inbox.rejected.values())

    def test_queue_full_backpressure_retries_until_acked(self, tmp_path,
                                                         mkdir_bytes,
                                                         mkfifo_bytes):
        # A slow spool disk (injected delay) + depth-1 queue: concurrent
        # uploads must draw retry-after, and every client's backoff loop
        # must still land its report.
        faults = FaultInjector(FaultSpec(spool_delay_seconds=0.2))
        with start_server(tmp_path, faults=faults, ingest_queue_depth=1,
                          spool_writers=1) as server:
            payloads = [mkdir_bytes, mkfifo_bytes,
                        mkdir_bytes + b"", mkfifo_bytes + b""]
            receipts = {}
            errors = []

            def ship(index, data):
                client = UploadClient(server.host, server.port,
                                      client_id=f"q{index}", seed=index,
                                      max_attempts=40, base_delay=0.05)
                try:
                    receipts[index] = client.upload(data)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=ship, args=(i, data))
                       for i, data in enumerate(payloads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(receipts) == len(payloads)
            counters = server.service.registry.snapshot().counters
            assert counters.get("service.net.retry_after", 0) > 0
            assert counters["service.net.uploads_acked"] == len(payloads)

    def test_spool_write_failure_never_acks_or_ingests(self, tmp_path,
                                                       mkdir_bytes):
        faults = FaultInjector(FaultSpec(seed=0, spool_fail_rate=1.0))
        with start_server(tmp_path, faults=faults) as server:
            client = UploadClient(server.host, server.port, client_id="d0",
                                  max_attempts=3, base_delay=0.01)
            with pytest.raises(UploadFailed, match="spool-write-failed"):
                client.upload(mkdir_bytes)
            with server._lock:
                assert server.service.inbox.describe()["traces"] == 0
            counters = server.service.registry.snapshot().counters
            assert counters["service.net.spool_write_failures"] == 3

    def test_slow_loris_is_shed_without_harming_others(self, tmp_path,
                                                       mkdir_bytes):
        with start_server(tmp_path, read_timeout_seconds=0.3) as server:
            stalled = socket.create_connection((server.host, server.port),
                                               timeout=5.0)
            stalled.sendall(struct.pack("!I", 1024) + b"dribble")
            healthy = UploadClient(server.host, server.port, client_id="h0")
            receipt = healthy.upload(mkdir_bytes)
            assert receipt.trace_id

            for _ in range(50):
                counters = server.service.registry.snapshot().counters
                if counters.get("service.net.timeouts"):
                    break
                time.sleep(0.1)
            assert counters.get("service.net.timeouts", 0) >= 1
            stalled.close()

    def test_client_fault_injection_recovers_deterministically(
            self, tmp_path, mkdir_bytes):
        # Rates of 1.0 for the first attempts then clean retries would need
        # schedule knowledge; instead give each damage kind a high rate and
        # a generous retry budget -- the seeded schedule is deterministic,
        # so this test never flakes: same seed, same injected sequence.
        faults = FaultInjector(FaultSpec(seed=11, drop_rate=0.5,
                                         truncate_rate=0.5,
                                         corrupt_rate=0.5))
        with start_server(tmp_path) as server:
            client = UploadClient(server.host, server.port, client_id="f0",
                                  seed=11, max_attempts=30,
                                  base_delay=0.005, faults=faults)
            receipt = client.upload(mkdir_bytes)
            assert receipt.trace_id
            assert receipt.attempts > 1
            assert sum(faults.counts().values()) > 0
            with server._lock:
                assert server.service.inbox.describe()["traces"] == 1
                assert server.service.inbox.rejected == {}

    def test_drain_shutdown_answers_new_uploads_retry_after(self, tmp_path,
                                                            mkdir_bytes):
        server = start_server(tmp_path)
        client = UploadClient(server.host, server.port, client_id="s0")
        receipt = client.upload(mkdir_bytes)
        server.shutdown()
        assert receipt.trace_id
        # The acked upload survived the drain: a fresh server on the same
        # root sees it without re-ingesting.
        revived = UploadServer(str(tmp_path / "svc"), config=net_config())
        try:
            assert revived.recovered == []
            assert revived.service.inbox.describe()["traces"] == 1
        finally:
            revived.shutdown()

    def test_stats_endpoint_reports_rejections_and_faults(self, tmp_path,
                                                          mkdir_bytes):
        with start_server(tmp_path) as server:
            client = UploadClient(server.host, server.port, client_id="st")
            client.upload(mkdir_bytes)
            with pytest.raises(UploadRejected):
                client.upload(b"garbage garbage garbage")
            body = client.stats_remote()
            assert body["stats"]["traces_ingested"] == 1
            assert body["inbox"]["rejected"] == 1
            assert len(body["rejected"]) == 1
            assert body["recovered"] == []


class TestServerRestart:
    def test_restart_recovers_committed_but_uningested_spool(self, tmp_path,
                                                             mkdir_bytes):
        # Simulate a crash after the journaled spool write but before the
        # inbox recorded it: the file is durable, inbox.json never saw it.
        server = start_server(tmp_path)
        digest = hashlib.sha256(mkdir_bytes).hexdigest()
        partition = 1
        path = os.path.join(server.partitions[partition],
                            f"crashed-{digest[:16]}.trace")
        journaled_spool_write(server.journal, path, mkdir_bytes)
        server.shutdown()

        revived = start_server(tmp_path)
        try:
            assert len(revived.recovered) == 1
            with revived._lock:
                described = revived.service.inbox.describe()
            assert described["traces"] == 1
            # The client's retry of the never-acked upload dedups against
            # the recovered file's cluster instead of double-searching it.
            client = UploadClient(revived.host, revived.port,
                                  client_id="crashed")
            receipt = client.upload(mkdir_bytes)
            assert receipt.duplicate
            processed = client.process()
            assert processed["stats"]["searches_run"] == 1
        finally:
            revived.shutdown()

    def test_done_clusters_stay_done_across_restart(self, tmp_path,
                                                    mkdir_bytes):
        server = start_server(tmp_path)
        client = UploadClient(server.host, server.port, client_id="r0")
        receipt = client.upload(mkdir_bytes)
        client.process()
        server.shutdown()

        revived = start_server(tmp_path)
        try:
            client = UploadClient(revived.host, revived.port,
                                  client_id="r0")
            body = client.report(receipt.trace_id)
            assert body["status"] == "done"
            # Processing again runs zero new searches: the done cluster
            # keeps its persisted report (searches_run counts only this
            # process's searches, and there were none).
            processed = client.process()
            assert processed["stats"]["searches_run"] == 0
            assert processed["reports"] == {}
            assert processed["stats"]["clusters_done"] == 1
        finally:
            revived.shutdown()
