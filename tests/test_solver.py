"""Tests for the small-domain constraint solver."""

import pytest

from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.expr import sym_bin, sym_const, sym_var
from repro.symbolic.solver import solve


def make_set(*exprs):
    cs = ConstraintSet()
    for expr in exprs:
        cs.add_expr(expr)
    return cs


A = sym_var("a")
B = sym_var("b")
C = sym_var("c")


class TestBasicSolving:
    def test_empty_set_is_satisfiable(self):
        result = solve(make_set())
        assert result.satisfiable

    def test_single_equality(self):
        result = solve(make_set(sym_bin("==", A, sym_const(ord("G")))))
        assert result.satisfiable
        assert result.assignment["a"] == ord("G")

    def test_conjunction_of_equalities(self):
        cs = make_set(sym_bin("==", A, sym_const(10)),
                      sym_bin("==", B, sym_const(20)))
        result = solve(cs)
        assert result.assignment == {"a": 10, "b": 20}

    def test_inequality_chain(self):
        cs = make_set(sym_bin(">", A, sym_const(250)),
                      sym_bin("!=", A, sym_const(255)))
        result = solve(cs)
        assert result.satisfiable
        assert result.assignment["a"] in (251, 252, 253, 254)

    def test_unsatisfiable_equalities(self):
        cs = make_set(sym_bin("==", A, sym_const(1)),
                      sym_bin("==", A, sym_const(2)))
        result = solve(cs)
        assert not result.satisfiable
        assert result.assignment is None

    def test_trivially_false_constant(self):
        cs = make_set(sym_bin("==", sym_const(0), sym_const(1)))
        assert not solve(cs).satisfiable

    def test_out_of_domain_is_unsat(self):
        cs = make_set(sym_bin("==", A, sym_const(300)))
        assert not solve(cs).satisfiable


class TestMultiVariable:
    def test_relation_between_variables(self):
        cs = make_set(sym_bin("<", A, B), sym_bin("==", B, sym_const(3)))
        result = solve(cs)
        assert result.satisfiable
        assert result.assignment["a"] < 3

    def test_arithmetic_relation(self):
        cs = make_set(sym_bin("==", sym_bin("+", A, B), sym_const(10)),
                      sym_bin("==", A, sym_const(4)))
        result = solve(cs)
        assert result.assignment["b"] == 6

    def test_three_variables(self):
        cs = make_set(sym_bin("==", A, sym_const(ord("G"))),
                      sym_bin("==", B, sym_const(ord("E"))),
                      sym_bin("==", C, sym_const(ord("T"))))
        result = solve(cs)
        assert bytes([result.assignment["a"], result.assignment["b"],
                      result.assignment["c"]]) == b"GET"

    def test_negated_prefix_path(self):
        # The concolic "flip": same prefix, negated last constraint.
        cs = make_set(sym_bin("==", A, sym_const(ord("a"))),
                      sym_bin("!=", B, sym_const(ord("b"))))
        result = solve(cs)
        assert result.assignment["a"] == ord("a")
        assert result.assignment["b"] != ord("b")


class TestHintsAndExtras:
    def test_hint_is_preferred_when_consistent(self):
        cs = make_set(sym_bin(">", A, sym_const(10)))
        result = solve(cs, hint={"a": 42})
        assert result.assignment["a"] == 42

    def test_hint_is_overridden_when_inconsistent(self):
        cs = make_set(sym_bin("==", A, sym_const(7)))
        result = solve(cs, hint={"a": 42})
        assert result.assignment["a"] == 7

    def test_extra_variables_receive_values(self):
        cs = make_set(sym_bin("==", A, sym_const(1)))
        result = solve(cs, extra_variables=[sym_var("z")])
        assert "z" in result.assignment

    def test_signed_domain_variable(self):
        ret = sym_var("ret", -1, 64)
        cs = make_set(sym_bin("<", ret, sym_const(0)))
        result = solve(cs)
        assert result.assignment["ret"] == -1

    def test_node_budget_reported(self):
        # An adversarial instance that cannot be satisfied, with a tiny budget.
        cs = make_set(sym_bin("==", sym_bin("+", A, sym_bin("+", B, C)),
                              sym_const(1000)))
        result = solve(cs, node_budget=10)
        assert not result.satisfiable
        assert result.stats.budget_exhausted or result.stats.nodes <= 10

    def test_stats_populated(self):
        cs = make_set(sym_bin("==", A, sym_const(5)))
        result = solve(cs)
        assert result.stats.wall_seconds >= 0.0
