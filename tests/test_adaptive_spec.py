"""Adaptive specialization: the int lattice, quickening, deopt and synth.

The tiers under test: the resolver's int-type lattice (which slots may be
unboxed statically), runtime quickening (warm-up triggers rewriting hot
generic sites in place), deoptimization (a type-guard violation rewrites a
specialized site back to its generic origin mid-run — the mechanism that
makes record-specialized / replay-generic runs observably identical), and
profile-driven superinstruction synthesis (:mod:`repro.vm.synth`).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Pipeline
from repro.instrument.methods import InstrumentationMethod
from repro.lang.program import Program
from repro.lang.resolve import resolve_program
from repro.telemetry import MetricsRegistry
from repro.telemetry.runtime import scoped
from repro.trace import dump_trace_bytes, trace_from_recording
from repro.vm import opcodes as op
from repro.vm import synth
from repro.vm.compiler import compile_program
from repro.workloads import fibonacci, userver
from repro.workloads.coreutils import ALL_PROGRAMS


def slots_by_name(program: Program, function: str):
    code = compile_program(program).functions[function]
    return {name: index for index, name in enumerate(code.slot_names)}


def lattice_for(source: str, function: str = "main"):
    program = Program.from_source(source, name="lattice-probe")
    resolution = resolve_program(program)
    return program, resolution.for_function(function)


# ---------------------------------------------------------------------------
# The resolver's int-type lattice
# ---------------------------------------------------------------------------


class TestIntLattice:
    def test_int_locals_and_atoi_results_are_int_slots(self):
        program, fn = lattice_for("""
            int main(int argc, char **argv) {
              int n = atoi(argv[1]);
              int total = 0;
              int i = 0;
              while (i < n) { total = total + i; i = i + 1; }
              return total;
            }
        """)
        slots = slots_by_name(program, "main")
        for name in ("argc", "n", "total", "i"):
            assert slots[name] in fn.int_slots, name

    def test_pointer_slots_are_excluded(self):
        program, fn = lattice_for("""
            int main(int argc, char **argv) {
              char buf[8];
              char *p = buf;
              int n = 3;
              p[0] = 65;
              return n;
            }
        """)
        slots = slots_by_name(program, "main")
        assert slots["buf"] in fn.pointer_slots
        assert slots["p"] in fn.pointer_slots
        assert slots["buf"] not in fn.int_slots
        assert slots["p"] not in fn.int_slots
        assert slots["n"] in fn.int_slots

    def test_pointer_write_poisons_an_otherwise_int_slot(self):
        # `x` starts as an int but is later overwritten with a pointer: the
        # lattice must converge to not-int (a single unboxed site reading a
        # pointer out of an "int" slot would corrupt the run).
        program, fn = lattice_for("""
            int main(int argc, char **argv) {
              int x = 1;
              x = x + 2;
              x = argv;
              return 0;
            }
        """)
        slots = slots_by_name(program, "main")
        assert slots["x"] not in fn.int_slots

    def test_int_slots_drive_unboxed_emission(self):
        program = Program.from_source("""
            int main(int argc, char **argv) {
              int i = 0;
              int total = 0;
              while (i < 1000) { total = total + i; i = i + 1; }
              return total;
            }
        """, name="emission-probe")
        generic = compile_program(program).functions["main"]
        specialized = compile_program(
            program, specialize_ints=True).functions["main"]
        unboxed = {op.BINOP_II, op.BINOP_IC, op.BINOP_II_STORE,
                   op.BINOP_IC_STORE, op.BINOP_II_BRANCH, op.BINOP_IC_BRANCH}
        assert not unboxed & {i[0] for i in generic.instructions}
        assert unboxed & {i[0] for i in specialized.instructions}


# ---------------------------------------------------------------------------
# Runtime quickening and deoptimization counters
# ---------------------------------------------------------------------------


def run_vm(program: Program, environment, plan=None):
    from repro.instrument.logger import BranchLogger
    from repro.interp.inputs import ExecutionMode, InputBinder
    from repro.interp.interpreter import ExecutionConfig
    from repro.interp.tracer import NullHooks
    from repro.vm.machine import VirtualMachine

    hooks = BranchLogger(plan) if plan is not None else NullHooks()
    vm = VirtualMachine(
        program, kernel=environment.make_kernel(), hooks=hooks,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend="vm"))
    result = vm.run(environment.argv)
    return vm, result


class TestQuickening:
    def test_warm_up_rewrites_hot_sites(self):
        # userver has candidate sites the lattice cannot prove (library
        # string loops over argv-derived pointers feeding int locals); a
        # fresh compile starts them generic with warm-up triggers, and one
        # run must rewrite at least one of them in place.
        program = Program.from_source(userver.SOURCE, name="quicken-probe")
        environment = userver.saturation_workload(4)
        vm, result = run_vm(program, environment)
        stats = vm.quicken_stats()
        assert result.steps > 0
        assert stats["hits"] >= 1, stats
        assert stats["deopts"] == 0, stats

    def test_second_run_reuses_the_quickened_stream(self):
        # The compile cache returns the already-rewritten stream, so a
        # second run in the same process has nothing left to quicken: the
        # counters are per-run, and the warm sites are already specialized.
        program = Program.from_source(userver.SOURCE, name="quicken-warm")
        environment = userver.saturation_workload(4)
        first_vm, first = run_vm(program, environment)
        second_vm, second = run_vm(program, environment)
        assert first_vm.quicken_stats()["hits"] >= 1
        assert second_vm.quicken_stats()["hits"] == 0
        # Warm or cold, the observable run is identical.
        assert (first.steps, first.branch_executions, first.stdout) == \
            (second.steps, second.branch_executions, second.stdout)

    def test_replay_deoptimizes_specialized_sites(self):
        # Record runs concrete (unboxed guards hold); replay runs the same
        # stream against symbolic values, so the guards must fail and flip
        # each site back to its generic origin — counted as deopts.
        pipeline = Pipeline.from_source(
            fibonacci.SOURCE, name="deopt-count",
            config=PipelineConfig(backend="vm"))
        environment = fibonacci.scenario_b()
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        registry = MetricsRegistry()
        with scoped(registry):
            pipeline.reproduce(recording)
        counters = registry.snapshot().counters
        assert counters.get("vm.quicken.deopts", 0) >= 1, counters


# ---------------------------------------------------------------------------
# Deopt parity: record specialized, replay flips generic — identical bytes
# ---------------------------------------------------------------------------


def _outcome_fingerprint(outcome) -> tuple:
    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced, outcome.runs, outcome.solver_calls,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


#: Deopt-parity scenarios: mkfifo's replay reproduces its crash (report
#: parity through a full successful search); fibonacci's replay feeds
#: symbolic input straight into statically unboxed arithmetic, so its
#: int-slot guards must fail and deoptimize mid-search.
_PARITY_SCENARIOS = {
    "mkfifo": (lambda: (ALL_PROGRAMS["mkfifo"].SOURCE,
                        ALL_PROGRAMS["mkfifo"].bug_scenario()),
               False),
    "fibonacci": (lambda: (fibonacci.SOURCE, fibonacci.scenario_b()),
                  True),
}


def _record_and_reproduce(workload: str, name: str, specialize: bool):
    source, environment = _PARITY_SCENARIOS[workload][0]()
    config = PipelineConfig(backend="vm", specialize_ints=specialize,
                            synth_superinstructions=specialize)
    pipeline = Pipeline.from_source(source, name=name, config=config)
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    registry = MetricsRegistry()
    with scoped(registry):
        report = pipeline.reproduce(recording)
    deopts = registry.snapshot().counters.get("vm.quicken.deopts", 0)
    return recording, report, deopts


@pytest.mark.parametrize("workload", sorted(_PARITY_SCENARIOS))
def test_guard_violating_replay_produces_identical_traces_and_reports(workload):
    """Record specialized == record generic, down to the trace bytes.

    The specialized recording runs unboxed/quickened/synthesized code and
    its replay deoptimizes every guard-violating site back to generic; the
    generic pipeline never specializes at all.  Both must produce the
    byte-identical persisted trace and the identical replay report.
    """

    expect_deopts = _PARITY_SCENARIOS[workload][1]
    specialized_rec, specialized_report, specialized_deopts = \
        _record_and_reproduce(workload, f"deopt-parity-{workload}-on", True)
    generic_rec, generic_report, generic_deopts = \
        _record_and_reproduce(workload, f"deopt-parity-{workload}-off", False)
    # The knob-off pipeline has nothing to deoptimize, ever; the workloads
    # marked expect_deopts really do hit guards and flip sites back.
    assert generic_deopts == 0
    if expect_deopts:
        assert specialized_deopts >= 1
    on_bytes = dump_trace_bytes(
        trace_from_recording(specialized_rec, program_name=workload))
    off_bytes = dump_trace_bytes(
        trace_from_recording(generic_rec, program_name=workload))
    assert on_bytes == off_bytes
    assert _outcome_fingerprint(specialized_report.outcome) == \
        _outcome_fingerprint(generic_report.outcome)
    if workload == "mkfifo":
        assert specialized_report.outcome.reproduced
    assert specialized_report.outcome.stats() == generic_report.outcome.stats()


# ---------------------------------------------------------------------------
# Superinstruction synthesis
# ---------------------------------------------------------------------------


class TestSynth:
    def test_rank_candidates_scores_by_rarer_member(self):
        static = Counter({(op.LOAD_FAST, op.LOAD_FAST): 3,
                          (op.BINARY, op.RET): 1})
        counts = {"LOAD_FAST": 1000, "BINARY": 40, "RET": 90}
        ranked = synth.rank_candidates(static, counts)
        assert ranked[0] == ("load2_fast", 1000)
        assert ("binary_ret", 40) in ranked
        # No static site, or a never-dispatched member -> not a candidate.
        names = [name for name, _score in ranked]
        assert "const_ret" not in names
        assert "load_index_fast" not in names

    def test_select_fusions_limits_and_orders(self):
        program = Program.from_source("""
            int main(int argc, char **argv) {
              int arr[4];
              int i = 1;
              arr[i] = 7;
              return arr[i];
            }
        """, name="synth-select")
        compiled = compile_program(program)
        counts = {"LOAD_FAST": 500, "LOAD_INDEX": 120, "STORE_INDEX": 80,
                  "CONST": 60, "RET": 10}
        selected = synth.select_fusions(compiled, counts, limit=2)
        assert len(selected) == 2
        assert selected[0] == "load2_fast"

    def test_try_fuse_second_round_pairs(self):
        fused = synth.try_fuse(
            ("load_index_ff",),
            (op.LOAD2_FAST, (2, 3), 5, 11), (op.LOAD_INDEX, None, 1, 12))
        assert fused == (op.LOAD_INDEX_FF, (2, 3), 6, 12)
        stored = synth.try_fuse(
            ("store_index_ff",),
            (op.LOAD2_FAST, (0, 1), 2, 7), (op.STORE_INDEX, None, 1, 8))
        assert stored == (op.STORE_INDEX_FF, (0, 1), 3, 8)
        # Unselected patterns never fuse.
        assert synth.try_fuse(
            ("const_ret",),
            (op.LOAD2_FAST, (0, 1), 2, 7), (op.STORE_INDEX, None, 1, 8)) is None

    def test_compiler_materializes_all_slot_array_access(self):
        # LOAD_FAST;LOAD_FAST;LOAD_INDEX collapses in two rounds: first to
        # LOAD2_FAST;LOAD_INDEX, then to the one-dispatch LOAD_INDEX_FF.
        program = Program.from_source("""
            int main(int argc, char **argv) {
              int arr[4];
              int i = 1;
              arr[i] = 7;
              return arr[i];
            }
        """, name="synth-ff")
        compiled = compile_program(program, specialize_ints=True,
                                   synth_fusions=synth.DEFAULT_FUSIONS)
        stream = [instr[0] for instr in
                  compiled.functions["main"].instructions]
        assert op.LOAD_INDEX_FF in stream
        assert op.STORE_INDEX_FF in stream

    def test_render_dispatch_table(self):
        counts = {"CONST": 85, "BRANCH_LOGGED": 10, "BRANCH_BARE": 5}
        table = synth.render_dispatch_table(counts, top=2)
        lines = table.splitlines()
        assert lines[1].startswith("CONST")
        assert "logged branches: 10" in lines[-1]
        assert "bare branches: 5" in lines[-1]
        assert "shown: 2/3 opcodes" in lines[-1]
        assert synth.render_dispatch_table({}) == "(no vm.opcode.* records)"
