"""Integration tests for the Pipeline API (analyse → instrument → record → replay)."""

import pytest

from repro import (
    ConcolicBudget,
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
)
from repro.environment import simple_environment
from repro.workloads import fibonacci
from tests.conftest import GUARD_SOURCE


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(concolic_budget=ConcolicBudget(max_iterations=24, max_seconds=6),
                            replay_budget=ReplayBudget(max_runs=150, max_seconds=10))
    return Pipeline.from_source(GUARD_SOURCE, name="guard", config=config)


@pytest.fixture(scope="module")
def crash_env():
    return simple_environment(["guard", "crash"], name="crash-env")


@pytest.fixture(scope="module")
def analysis(pipeline, crash_env):
    return pipeline.analyze(crash_env)


class TestAnalysis:
    def test_both_analyses_present(self, analysis):
        assert analysis.dynamic is not None
        assert analysis.static is not None
        assert "dynamic" in analysis.summary()

    def test_dynamic_symbolic_subset_of_static(self, analysis):
        # Dynamic only labels truly symbolic branches; static is conservative,
        # so every dynamically-symbolic branch must be statically symbolic too.
        assert analysis.dynamic.labels.symbolic <= analysis.static.symbolic_branches

    def test_profile_branch_behavior(self, pipeline, crash_env):
        profile = pipeline.profile_branch_behavior(crash_env)
        rows = profile.location_stats()
        assert rows
        assert all(row["executions"] >= row["symbolic_executions"] for row in rows)


class TestPlans:
    def test_all_plans_built(self, pipeline, analysis):
        plans = pipeline.make_all_plans(analysis)
        assert set(plans) == set(InstrumentationMethod.paper_methods())

    def test_plan_size_ordering(self, pipeline, analysis):
        plans = pipeline.make_all_plans(analysis)
        assert (plans[InstrumentationMethod.DYNAMIC].instrumented_count()
                <= plans[InstrumentationMethod.DYNAMIC_PLUS_STATIC].instrumented_count()
                <= plans[InstrumentationMethod.ALL_BRANCHES].instrumented_count())
        assert (plans[InstrumentationMethod.STATIC].instrumented_count()
                <= plans[InstrumentationMethod.ALL_BRANCHES].instrumented_count())

    def test_log_syscalls_override(self, pipeline, analysis):
        plan = pipeline.make_plan(InstrumentationMethod.STATIC, analysis, log_syscalls=False)
        assert not plan.log_syscalls


class TestRecording:
    def test_recording_captures_crash_and_bits(self, pipeline, analysis, crash_env):
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES, analysis)
        recording = pipeline.record(plan, crash_env)
        assert recording.crashed
        assert recording.crash_site.function == "check"
        assert len(recording.bitvector) == recording.execution.branch_executions
        assert recording.storage_bytes() >= recording.bitvector.storage_bytes()

    def test_overhead_ordering_matches_plan_sizes(self, pipeline, analysis, crash_env):
        cpu = {}
        for method in InstrumentationMethod.paper_methods():
            plan = pipeline.make_plan(method, analysis)
            cpu[method] = pipeline.record(plan, crash_env).overhead.cpu_time_percent
        assert cpu[InstrumentationMethod.DYNAMIC] <= cpu[InstrumentationMethod.ALL_BRANCHES]
        assert cpu[InstrumentationMethod.STATIC] <= cpu[InstrumentationMethod.ALL_BRANCHES]

    def test_baseline_cached_per_environment(self, pipeline, crash_env):
        first = pipeline.baseline_steps(crash_env)
        second = pipeline.baseline_steps(crash_env)
        assert first == second


class TestEndToEnd:
    @pytest.mark.parametrize("method", list(InstrumentationMethod.paper_methods()))
    def test_every_method_reproduces_the_guard_crash(self, pipeline, analysis,
                                                     crash_env, method):
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, crash_env)
        report = pipeline.reproduce(recording)
        assert report.reproduced, f"{method} failed: {report.outcome.summary()}"

    def test_end_to_end_convenience(self, pipeline, crash_env, analysis):
        recording, report = pipeline.end_to_end(InstrumentationMethod.DYNAMIC_PLUS_STATIC,
                                                crash_env, analysis=analysis)
        assert recording.crashed
        assert report.reproduced

    def test_branch_logging_stats_partition(self, pipeline, analysis, crash_env):
        plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC, analysis)
        stats = pipeline.branch_logging_stats(plan, crash_env)
        all_plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES, analysis)
        all_stats = pipeline.branch_logging_stats(all_plan, crash_env)
        # With every branch instrumented nothing symbolic is left unlogged.
        assert all_stats.not_logged_locations == 0
        total = stats.logged_executions + stats.not_logged_executions
        all_total = all_stats.logged_executions + all_stats.not_logged_executions
        assert total == all_total


class TestListing1:
    def test_fibonacci_two_bits_suffice(self):
        config = PipelineConfig(concolic_budget=ConcolicBudget(max_iterations=6, max_seconds=10))
        pipeline = Pipeline.from_source(fibonacci.SOURCE, name="fib", config=config)
        env = fibonacci.scenario_b()
        analysis = pipeline.analyze(env)
        for method in (InstrumentationMethod.DYNAMIC,
                       InstrumentationMethod.DYNAMIC_PLUS_STATIC,
                       InstrumentationMethod.STATIC):
            plan = pipeline.make_plan(method, analysis)
            recording = pipeline.record(plan, env)
            # Only the two option branches are instrumented, so the whole run
            # produces exactly two logged bits (the paper's Listing 1 point).
            assert plan.instrumented_count() == 2
            assert len(recording.bitvector) == 2
