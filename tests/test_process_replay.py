"""Process-pool replay workers: determinism, warm start, two-process e2e."""

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro import (
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
)
from repro.replay.engine import ReplayEngine
from repro.replay.pending import PendingItem
from repro.symbolic.constraints import ConstraintSet, intern_stats
from repro.symbolic.expr import sym_bin, sym_const, sym_var
from repro.symbolic.solver import solve, warm_start_assignment
from repro.workloads import diffutil, userver
from repro.workloads.coreutils import mkdir, paste

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: One crashing scenario per workload family (uServer, diff, coreutils).
FAMILIES = [
    ("userver-exp2", userver.SOURCE, userver.experiment(2),
     frozenset(userver.LIBRARY_FUNCTIONS)),
    ("diff-exp1", diffutil.SOURCE, diffutil.experiment_1(), frozenset()),
    ("mkdir-bug", mkdir.SOURCE, mkdir.bug_scenario(), frozenset()),
]


def outcome_fingerprint(outcome):
    """The explored search tree plus every mode-independent counter."""

    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced, outcome.runs, outcome.solver_calls,
        outcome.warm_start_hits, outcome.solver_nodes,
        outcome.compile_cache_lookups,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


def record_for(source, environment, library):
    pipeline = Pipeline.from_source(
        source, name=environment.name,
        config=PipelineConfig(library_functions=set(library)))
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    return pipeline, pipeline.record(plan, environment)


def search(pipeline, recording, workers, worker_kind, warm_start=True,
           budget=None):
    engine = ReplayEngine(
        program=pipeline.program, plan=recording.plan,
        bitvector=recording.bitvector, syscall_log=recording.syscall_log,
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        budget=budget or ReplayBudget(max_runs=1500, max_seconds=60),
        backend="vm", workers=workers, worker_kind=worker_kind,
        warm_start=warm_start)
    return engine.reproduce()


class TestProcessPoolDeterminism:
    @pytest.mark.parametrize("name,source,environment,library", FAMILIES,
                             ids=[f[0] for f in FAMILIES])
    def test_explored_set_identical_across_worker_kinds(self, name, source,
                                                        environment, library):
        pipeline, recording = record_for(source, environment, library)
        serial = search(pipeline, recording, workers=1, worker_kind="thread")
        threads = search(pipeline, recording, workers=3, worker_kind="thread")
        processes = search(pipeline, recording, workers=2, worker_kind="process")
        assert serial.reproduced
        base = outcome_fingerprint(serial)
        assert outcome_fingerprint(threads) == base
        assert outcome_fingerprint(processes) == base
        # Cross-process observability: the aggregated totals match serial
        # (the hit/miss split legitimately differs — each worker process
        # warms its own compile cache — but the lookup total cannot).
        for key in ("runs", "solver_calls", "solver_nodes", "warm_start_hits",
                    "compile_cache_lookups"):
            assert processes.stats()[key] == serial.stats()[key], key
        assert processes.worker_kind == "process"
        assert serial.compile_cache_lookups == serial.runs

    def test_grown_coreutils_scenario_process_identical(self):
        pipeline, recording = record_for(paste.SOURCE, paste.big_bug_scenario(24),
                                         frozenset())
        serial = search(pipeline, recording, workers=1, worker_kind="thread")
        processes = search(pipeline, recording, workers=2, worker_kind="process")
        assert serial.reproduced
        assert outcome_fingerprint(processes) == outcome_fingerprint(serial)

    def test_invalid_worker_kind_rejected(self):
        pipeline, recording = record_for(mkdir.SOURCE, mkdir.bug_scenario(),
                                         frozenset())
        with pytest.raises(ValueError, match="worker_kind"):
            search(pipeline, recording, workers=2, worker_kind="fork-bomb")

    def test_pending_items_pickle_with_stable_signatures(self):
        constraints = ConstraintSet()
        constraints.add_expr(sym_bin("==", sym_var("a0"), sym_const(47)))
        constraints.add_expr(sym_bin(">", sym_var("a1"), sym_const(5)))
        item = PendingItem(constraints=constraints, hint={"a0": 47, "a1": 9},
                           depth=2, origin_run=3, reason="test")
        clone = pickle.loads(pickle.dumps(item))
        assert clone.signature() == item.signature()
        assert clone.hint == item.hint
        assert [str(c.expr) for c in clone.constraints] == \
               [str(c.expr) for c in item.constraints]


class TestConstraintInterning:
    @staticmethod
    def _chain(length):
        constraints = ConstraintSet()
        for index in range(length):
            constraints.add_expr(
                sym_bin("<", sym_var(f"byte_{index}", 0, 255),
                        sym_const(100 + index)),
                origin=index + 1)
        return constraints

    def test_prefix_sharing_restored_after_pickle(self):
        """Interned sets with equal prefixes share Constraint objects."""

        base = self._chain(12)
        alternatives = [base.prefix(k).with_negated_last()
                        for k in range(1, 13)]
        # Each item crosses the process boundary on its own (that is how the
        # pool submits them), so identity sharing is destroyed ...
        clones = [pickle.loads(pickle.dumps(PendingItem(constraints=a)))
                  for a in alternatives]
        assert clones[10].constraints[0] is not clones[11].constraints[0]
        # ... and interning restores it.
        interned = [item.constraints.interned() for item in clones]
        assert interned[10][0] is interned[11][0]
        assert interned[3][2] is interned[11][2]
        # Canonicalization never changes the structural identity.
        for item, canonical in zip(clones, interned):
            assert canonical.signature() == item.constraints.signature()

    def test_interning_shrinks_pickled_pending_payload(self):
        """The pickled batch of prefix-sharing items gets smaller."""

        base = self._chain(16)
        alternatives = [base.prefix(k).with_negated_last()
                        for k in range(1, 17)]
        unshared = [pickle.loads(pickle.dumps(a)) for a in alternatives]
        interned = [a.interned() for a in unshared]
        payload_unshared = len(pickle.dumps(unshared))
        payload_interned = len(pickle.dumps(interned))
        # Shared prefixes are stored once instead of per item: the payload
        # the engine ships to (and keeps queued for) its workers shrinks
        # substantially for prefix-heavy pending lists.
        assert payload_interned < payload_unshared * 0.6, (
            payload_interned, payload_unshared)

    def test_engine_interns_committed_alternatives(self):
        pipeline, recording = record_for(mkdir.SOURCE, mkdir.bug_scenario(),
                                         frozenset())
        before = intern_stats()
        outcome = search(pipeline, recording, workers=1, worker_kind="thread")
        assert outcome.reproduced
        after = intern_stats()
        # The search pushed prefix-sharing alternatives through the intern
        # table (misses populate chains, hits mean sharing happened; a
        # table warmed by earlier searches answers everything with hits).
        assert (after["hits"] + after["misses"]
                > before["hits"] + before["misses"])


class TestWarmStart:
    def test_differential_against_solver(self):
        """warm_start_assignment must return exactly solve()'s answer or None."""

        rng = random.Random(20260730)
        ops = ["==", "!=", "<", "<=", ">", ">="]
        hits = 0
        for _ in range(600):
            variables = [sym_var(f"v{i}", 0, rng.choice([10, 255, 100000]))
                         for i in range(rng.randint(1, 4))]
            constraints = ConstraintSet()
            for _ in range(rng.randint(1, 6)):
                if rng.random() < 0.75:
                    constraints.add_expr(sym_bin(
                        rng.choice(ops), rng.choice(variables),
                        sym_const(rng.randint(-2, 260))))
                else:
                    constraints.add_expr(sym_bin(
                        rng.choice(ops), rng.choice(variables),
                        rng.choice(variables)))
            hint = {var.name: rng.randint(var.lo, min(var.hi, 300))
                    for var in variables if rng.random() < 0.9}
            warm = warm_start_assignment(constraints, hint)
            if warm is None:
                continue
            hits += 1
            solution = solve(constraints, hint=hint)
            assert solution.satisfiable
            overrides = dict(hint)
            overrides.update(solution.assignment)
            assert warm == overrides, (str(constraints), hint)
        assert hits > 50  # the shortcut must actually fire on typical shapes

    def test_engine_tree_identical_with_and_without_warm_start(self):
        pipeline, recording = record_for(userver.SOURCE, userver.experiment(2),
                                         frozenset(userver.LIBRARY_FUNCTIONS))
        warm = search(pipeline, recording, workers=1, worker_kind="thread",
                      warm_start=True)
        cold = search(pipeline, recording, workers=1, worker_kind="thread",
                      warm_start=False)
        assert warm.reproduced and cold.reproduced
        # Identical tree (runs, records, pending, input) ...
        def tree(outcome):
            return (outcome.runs,
                    tuple((r.outcome, r.consumed_bits, r.constraints,
                           r.deviation) for r in outcome.run_records),
                    tuple(sorted(outcome.pending_stats.items())),
                    tuple(sorted(outcome.found_input.items())))
        assert tree(warm) == tree(cold)
        # ... for strictly fewer solver calls.
        assert warm.warm_start_hits > 0
        assert warm.solver_calls < cold.solver_calls
        assert cold.warm_start_hits == 0


class TestTwoProcessEndToEnd:
    def test_record_then_replay_in_separate_processes(self, tmp_path):
        """The paper's split, literally: record and replay never share a process."""

        tool = os.path.join(REPO_ROOT, "scripts", "trace_tool.py")
        trace_path = str(tmp_path / "mkdir.trace")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))

        record = subprocess.run(
            [sys.executable, tool, "record", "--workload", "mkdir-bug",
             "--out", trace_path],
            capture_output=True, text=True, env=env, timeout=120)
        assert record.returncode == 0, record.stderr
        assert os.path.exists(trace_path)

        replay = subprocess.run(
            [sys.executable, tool, "replay", "--trace", trace_path,
             "--workload", "mkdir-bug", "--workers", "2",
             "--worker-kind", "process"],
            capture_output=True, text=True, env=env, timeout=120)
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "reproduced" in replay.stdout

        mismatch = subprocess.run(
            [sys.executable, tool, "replay", "--trace", trace_path,
             "--workload", "diff-exp1"],
            capture_output=True, text=True, env=env, timeout=120)
        assert mismatch.returncode == 2
        assert "matched binaries" in mismatch.stderr
        assert "Traceback" not in mismatch.stderr
        assert mismatch.stderr.strip().count("\n") == 0

    def test_corrupted_trace_fails_with_one_line_reason(self, tmp_path):
        """A damaged trace file exits 2 with a single-line reason, never a
        traceback."""

        tool = os.path.join(REPO_ROOT, "scripts", "trace_tool.py")
        trace_path = str(tmp_path / "mkdir.trace")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        record = subprocess.run(
            [sys.executable, tool, "record", "--workload", "mkdir-bug",
             "--out", trace_path],
            capture_output=True, text=True, env=env, timeout=120)
        assert record.returncode == 0, record.stderr

        data = open(trace_path, "rb").read()
        truncated = str(tmp_path / "truncated.trace")
        with open(truncated, "wb") as handle:
            handle.write(data[:len(data) // 2])
        flipped = str(tmp_path / "flipped.trace")
        with open(flipped, "wb") as handle:
            handle.write(data[:40] + bytes([data[40] ^ 0xFF]) + data[41:])

        for damaged in (truncated, flipped):
            replay = subprocess.run(
                [sys.executable, tool, "replay", "--trace", damaged,
                 "--workload", "mkdir-bug"],
                capture_output=True, text=True, env=env, timeout=120)
            assert replay.returncode == 2, damaged
            assert "error: TraceFormatError:" in replay.stderr
            assert "Traceback" not in replay.stderr
            assert replay.stderr.strip().count("\n") == 0, replay.stderr
