"""The service layer: inbox dedup, scheduling, sessions, fan-out, restart.

The load-bearing contract is the acceptance criterion of the trace-inbox
design: for a batch of K traces with D distinct ``(fingerprint, crash
site)`` clusters, exactly D replay searches execute, every trace receives a
report, and each report's explored search tree is **byte-identical** to
running that trace alone through ``Pipeline.reproduce_from_trace``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import InstrumentationMethod, ReplayBudget
from repro.service import (
    ReproConfig,
    ReproService,
    TraceInbox,
    outcome_fingerprint,
    workload_pipeline,
)
from repro.trace import dump_trace_bytes, trace_from_recording

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def service_config() -> ReproConfig:
    config = ReproConfig()
    config.execution.backend = "vm"
    config.replay.budget = ReplayBudget(max_runs=1500, max_seconds=60)
    return config


def record_trace_bytes(workload: str) -> bytes:
    """One shipped bug report (privacy scaffold) for *workload*, as bytes."""

    pipeline, environment = workload_pipeline(workload,
                                              config=service_config())
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    trace = trace_from_recording(recording, scaffold=True,
                                 program_name=workload)
    return dump_trace_bytes(trace)


@pytest.fixture(scope="module")
def mkdir_bytes() -> bytes:
    return record_trace_bytes("mkdir-bug")


@pytest.fixture(scope="module")
def mkfifo_bytes() -> bytes:
    return record_trace_bytes("mkfifo-bug")


@pytest.fixture(scope="module")
def paste_bytes() -> bytes:
    return record_trace_bytes("paste-bug")


class TestInboxIngestion:
    def test_bytes_cluster_by_fingerprint_and_crash(self, tmp_path,
                                                    mkdir_bytes,
                                                    mkfifo_bytes):
        inbox = TraceInbox(str(tmp_path / "inbox"))
        first = inbox.ingest_bytes(mkdir_bytes)
        dup = inbox.ingest_bytes(mkdir_bytes)
        other = inbox.ingest_bytes(mkfifo_bytes)
        assert not first.duplicate and dup.duplicate and not other.duplicate
        assert first.cluster_id == dup.cluster_id != other.cluster_id
        assert first.trace_id != dup.trace_id
        assert inbox.describe() == {"traces": 3, "clusters": 2, "pending": 2,
                                    "done": 0, "rejected": 0}
        cluster = inbox.cluster_of(first.trace_id)
        assert cluster.members == [first.trace_id, dup.trace_id]
        assert cluster.crash_site == first.crash_site

    def test_spool_polling_skips_seen_and_survives_corruption(
            self, tmp_path, mkdir_bytes, mkfifo_bytes):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "u1.trace").write_bytes(mkdir_bytes)
        (spool / "u2.trace").write_bytes(mkdir_bytes)
        (spool / "u3.trace").write_bytes(mkfifo_bytes)
        (spool / "broken.trace").write_bytes(mkdir_bytes[: len(mkdir_bytes) // 2])
        (spool / "notes.txt").write_text("not a trace")

        inbox = TraceInbox(str(tmp_path / "inbox"))
        results = inbox.poll_spool(str(spool))
        assert len(results) == 3  # .txt ignored, corrupt skipped for now
        # The unparsable file gets one grace poll (it could be mid-write);
        # unchanged on the second poll, it is rejected for good.
        assert len(inbox.rejected) == 0
        assert inbox.poll_spool(str(spool)) == []
        assert len(inbox.rejected) == 1
        reason = next(iter(inbox.rejected.values()))
        assert "TraceFormatError" in reason and "\n" not in reason
        # Re-polling ingests nothing new (including the rejected file).
        assert inbox.poll_spool(str(spool)) == []
        assert inbox.describe()["traces"] == 3

    def test_state_persists_across_restart(self, tmp_path, mkdir_bytes,
                                           mkfifo_bytes):
        root = str(tmp_path / "inbox")
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "a.trace").write_bytes(mkdir_bytes)
        (spool / "b.trace").write_bytes(mkfifo_bytes)
        first = TraceInbox(root)
        assert len(first.poll_spool(str(spool))) == 2
        # A fresh instance on the same root resumes, not restarts.
        reborn = TraceInbox(root)
        assert reborn.poll_spool(str(spool)) == []
        assert reborn.describe()["traces"] == 2
        assert {c.cluster_id for c in reborn.clusters.values()} \
            == {c.cluster_id for c in first.clusters.values()}
        # The stored copies survive too.
        for trace_id in reborn.traces:
            assert os.path.exists(reborn.trace_path(trace_id))

    def test_persist_false_writes_no_state(self, tmp_path, mkdir_bytes):
        root = str(tmp_path / "inbox")
        inbox = TraceInbox(root, persist=False)
        inbox.ingest_bytes(mkdir_bytes)
        assert not os.path.exists(os.path.join(root, "inbox.json"))

    def test_priority_orders(self, tmp_path, mkdir_bytes, paste_bytes):
        inbox = TraceInbox(str(tmp_path / "inbox"))
        big = inbox.ingest_bytes(mkdir_bytes)   # more bits
        small = inbox.ingest_bytes(paste_bytes)  # fewer bits, later arrival
        assert big.bits > small.bits
        smallest = [c.cluster_id for c in inbox.pending_clusters()]
        assert smallest == [small.cluster_id, big.cluster_id]
        arrival = [c.cluster_id
                   for c in inbox.pending_clusters(priority="arrival")]
        assert arrival == [big.cluster_id, small.cluster_id]


class TestServiceProcessing:
    def _loaded_service(self, tmp_path, batches) -> tuple:
        service = ReproService(str(tmp_path / "inbox"),
                               config=service_config())
        ingested = []
        for data, copies in batches:
            for _ in range(copies):
                ingested.append(service.ingest_bytes(data))
        return service, ingested

    def test_dedup_is_semantics_preserving(self, tmp_path, mkdir_bytes,
                                           mkfifo_bytes):
        """K traces, D clusters -> exactly D searches; every report is
        byte-identical to the single-shot path for its trace."""

        service, ingested = self._loaded_service(
            tmp_path, [(mkdir_bytes, 3), (mkfifo_bytes, 2)])
        reports = service.process()
        stats = service.stats()
        assert stats.searches_run == 2  # D = 2 for K = 5
        assert stats.reports_fanned_out == 5
        assert set(reports) == {r.trace_id for r in ingested}

        singles = {}
        for data, workload in ((mkdir_bytes, "mkdir-bug"),
                               (mkfifo_bytes, "mkfifo-bug")):
            pipeline, _env = workload_pipeline(workload,
                                               config=service_config())
            from repro.trace import load_trace_bytes

            outcome = pipeline.reproduce_from_trace(
                load_trace_bytes(data)).outcome
            singles[workload] = outcome_fingerprint(outcome)
        for report in reports.values():
            assert report.reproduced
            assert report.fingerprint() == singles[report.program], \
                f"{report.trace_id} diverged from the single-shot search"
        assert stats.dedup_ratio == 2.5

    def test_cluster_pool_matches_inline(self, tmp_path, mkdir_bytes,
                                         mkfifo_bytes):
        """service.workers > 1 (persistent process pool) explores the same
        trees the inline scheduler does."""

        inline_service, _ = self._loaded_service(
            tmp_path / "inline", [(mkdir_bytes, 1), (mkfifo_bytes, 1)])
        inline = inline_service.process()

        config = service_config()
        config.service.workers = 2
        pooled_service = ReproService(str(tmp_path / "pooled"), config=config)
        pooled_ids = [pooled_service.ingest_bytes(data).trace_id
                      for data in (mkdir_bytes, mkfifo_bytes)]
        with pooled_service:
            pooled = pooled_service.process()
        assert pooled_service.stats().searches_run == 2
        inline_prints = sorted(r.fingerprint() for r in inline.values())
        pooled_prints = sorted(pooled[tid].fingerprint()
                               for tid in pooled_ids)
        assert pooled_prints == inline_prints

    def test_session_scopes_reports_to_its_traces(self, tmp_path,
                                                  mkdir_bytes, mkfifo_bytes):
        service = ReproService(str(tmp_path / "inbox"),
                               config=service_config())
        with service.session(name="user-a") as alice:
            a1 = alice.ingest_bytes(mkdir_bytes)
            a2 = alice.ingest_bytes(mkdir_bytes)
        with service.session(name="user-b") as bob:
            b1 = bob.ingest_bytes(mkfifo_bytes)
        assert alice.report(a1.trace_id) is None  # nothing processed yet
        service.process()
        alice_reports = alice.reports()
        assert set(alice_reports) == {a1.trace_id, a2.trace_id}
        assert all(r.reproduced for r in alice_reports.values())
        assert alice_reports[a2.trace_id].duplicate_of == a1.trace_id
        assert bob.report(b1.trace_id).program == "mkfifo-bug"

    def test_reports_survive_restart(self, tmp_path, mkdir_bytes):
        root = str(tmp_path / "inbox")
        service = ReproService(root, config=service_config())
        trace_id = service.ingest_bytes(mkdir_bytes).trace_id
        report = service.process()[trace_id]
        reborn = ReproService(root, config=service_config())
        restored = reborn.report(trace_id)
        assert restored is not None
        assert restored.fingerprint() == report.fingerprint()
        # Nothing pending: a restarted service re-runs no searches.
        assert reborn.process() == {}
        assert reborn.stats().searches_run == 0

    def test_unknown_program_fails_cluster_not_service(self, tmp_path,
                                                       mkdir_bytes):
        from repro import Pipeline
        from repro.workloads import fibonacci

        pipeline = Pipeline.from_source(fibonacci.SOURCE, name="mystery",
                                        config=service_config())
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES)
        recording = pipeline.record(plan, fibonacci.scenario_b())
        stray = dump_trace_bytes(trace_from_recording(
            recording, program_name="mystery"))

        service = ReproService(str(tmp_path / "inbox"),
                               config=service_config())
        stray_id = service.ingest_bytes(stray).trace_id
        good_id = service.ingest_bytes(mkdir_bytes).trace_id
        reports = service.process()
        assert reports[good_id].reproduced
        assert not reports[stray_id].reproduced
        assert "mystery" in reports[stray_id].error
        assert service.inbox.cluster_of(stray_id).status == "failed"

    def test_same_bug_different_recordings_search_separately(self, tmp_path):
        """Two users hit the *same* bug with *different* inputs: the traces
        share a bug key but are not equivalent recordings, so each gets its
        own search — and each report stays byte-identical to that trace's
        own single-shot path (the dedup contract, unconditionally)."""

        from repro.trace import load_trace_bytes

        exp1 = record_trace_bytes("diff-exp1")
        exp2 = record_trace_bytes("diff-exp2")
        service = ReproService(str(tmp_path / "inbox"),
                               config=service_config())
        r1 = service.ingest_bytes(exp1)
        r2 = service.ingest_bytes(exp2)
        assert r1.bug_key == r2.bug_key          # same (fingerprint, crash)
        assert r1.cluster_id != r2.cluster_id    # different recordings
        assert not r2.duplicate
        reports = service.process()
        assert service.stats().searches_run == 2
        for data, workload, result in ((exp1, "diff-exp1", r1),
                                       (exp2, "diff-exp2", r2)):
            pipeline, _env = workload_pipeline(workload,
                                               config=service_config())
            single = pipeline.reproduce_from_trace(load_trace_bytes(data))
            assert reports[result.trace_id].fingerprint() \
                == outcome_fingerprint(single.outcome)

    def test_smallest_search_dispatches_first(self, tmp_path, mkdir_bytes,
                                              paste_bytes):
        service = ReproService(str(tmp_path / "inbox"),
                               config=service_config())
        big = service.ingest_bytes(mkdir_bytes)
        small = service.ingest_bytes(paste_bytes)
        order = [c.cluster_id for c in service.inbox.pending_clusters(
            service.config.service.priority)]
        assert order == [small.cluster_id, big.cluster_id]
        reports = service.process(max_clusters=1)
        # Only the smallest cluster ran.
        assert set(reports) == {small.trace_id}
        assert service.inbox.cluster_of(big.trace_id).status == "pending"


class TestServeBatchCli:
    def test_spooled_duplicates_cost_one_search(self, tmp_path):
        """The CI smoke shape: 3 spooled traces (2 duplicates) -> exactly 2
        replay searches, asserted on the CLI's stats line."""

        tool = os.path.join(REPO_ROOT, "scripts", "trace_tool.py")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        spool = tmp_path / "spool"
        spool.mkdir()
        record = subprocess.run(
            [sys.executable, tool, "record", "--workload", "mkdir-bug",
             "--out", str(spool / "u1.trace")],
            capture_output=True, text=True, env=env, timeout=120)
        assert record.returncode == 0, record.stderr
        (spool / "u2.trace").write_bytes((spool / "u1.trace").read_bytes())
        record = subprocess.run(
            [sys.executable, tool, "record", "--workload", "mkfifo-bug",
             "--out", str(spool / "u3.trace")],
            capture_output=True, text=True, env=env, timeout=120)
        assert record.returncode == 0, record.stderr

        serve = subprocess.run(
            [sys.executable, tool, "serve-batch",
             "--root", str(tmp_path / "inbox"), "--spool", str(spool)],
            capture_output=True, text=True, env=env, timeout=300)
        assert serve.returncode == 0, serve.stdout + serve.stderr
        stats_line = [line for line in serve.stdout.splitlines()
                      if line.startswith("stats=")]
        assert stats_line, serve.stdout
        stats = json.loads(stats_line[0][len("stats="):])
        assert stats["traces_ingested"] == 3
        assert stats["searches_run"] == 2
        assert stats["reports_fanned_out"] == 3
        assert stats["reproduced_clusters"] == 2
        assert serve.stdout.count("report t") == 3
        assert "via=" in serve.stdout  # the duplicate rode along

    def test_module_entry_point_lists_workloads(self):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        listed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, timeout=120)
        assert listed.returncode == 0, listed.stderr
        assert "mkdir-bug" in listed.stdout.split()
