"""Tests for the simulated OS: filesystem, network model and kernel."""

import pytest

from repro.osmodel.filesystem import FileSystem
from repro.osmodel.kernel import Kernel, KernelConfig
from repro.osmodel.network import NetworkModel, NetworkScript, ScriptedConnection
from repro.osmodel.syscalls import SyscallKind


class TestFileSystem:
    def test_root_exists(self):
        fs = FileSystem()
        assert fs.exists("/")
        assert fs.is_dir("/")

    def test_add_and_read_file(self):
        fs = FileSystem()
        fs.add_file("/etc/hosts", b"127.0.0.1")
        assert fs.exists("/etc/hosts")
        assert fs.get("/etc/hosts").data == b"127.0.0.1"

    def test_path_normalization(self):
        fs = FileSystem()
        fs.add_file("dir//file.txt", b"x")
        assert fs.exists("/dir/file.txt")

    def test_mkdir_success_and_duplicate(self):
        fs = FileSystem()
        assert fs.mkdir("/data")
        assert not fs.mkdir("/data")

    def test_mkdir_requires_parent(self):
        fs = FileSystem()
        assert not fs.mkdir("/a/b/c")
        assert fs.mkdir("/a")
        assert fs.mkdir("/a/b")
        assert fs.mkdir("/a/b/c")

    def test_mknod_and_unlink(self):
        fs = FileSystem()
        assert fs.mknod("/dev0")
        assert fs.unlink("/dev0")
        assert not fs.unlink("/dev0")

    def test_cannot_unlink_root(self):
        fs = FileSystem()
        assert not fs.unlink("/")

    def test_write_and_append(self):
        fs = FileSystem()
        fs.write("/log", b"a")
        fs.write("/log", b"b", append=True)
        assert fs.get("/log").data == b"ab"


class TestNetworkModel:
    def test_connections_arrive_in_order(self):
        script = NetworkScript.from_requests([b"one", b"two"])
        net = NetworkModel(script)
        net.advance()
        assert net.pending_connection()
        first = net.accept(10)
        assert first.request == b"one"
        net.advance()
        second = net.accept(11)
        assert second.request == b"two"
        assert not net.pending_connection()

    def test_readable_until_drained(self):
        net = NetworkModel(NetworkScript.from_requests([b"abcd"]))
        net.advance()
        conn = net.accept(5)
        assert net.readable(5)
        assert conn.read(10) == b"abcd"
        assert not net.readable(5)
        assert net.all_done()

    def test_chunked_delivery(self):
        script = NetworkScript.from_requests([b"abcdef"], chunk_size=2)
        net = NetworkModel(script)
        net.advance()
        conn = net.accept(7)
        assert conn.read(100) == b"ab"
        assert conn.read(100) == b"cd"
        assert conn.read(100) == b"ef"

    def test_responses_collected(self):
        net = NetworkModel(NetworkScript.from_requests([b"hi"]))
        net.advance()
        conn = net.accept(3)
        conn.write(b"HTTP/1.1 200 OK")
        assert net.responses()[3] == b"HTTP/1.1 200 OK"


class TestKernelFiles:
    def test_open_read_close(self):
        kernel = Kernel()
        kernel.fs.add_file("/data.txt", b"hello world")
        fd = kernel.sys_open("/data.txt")
        assert fd >= 3
        count, data = kernel.sys_read(fd, 5)
        assert (count, data) == (5, b"hello")
        count, data = kernel.sys_read(fd, 100)
        assert data == b" world"
        assert kernel.sys_close(fd) == 0

    def test_open_missing_file(self):
        kernel = Kernel()
        assert kernel.sys_open("/nope") == -1

    def test_read_chunk_limit(self):
        kernel = Kernel(config=KernelConfig(read_chunk_limit=3))
        kernel.fs.add_file("/f", b"abcdefgh")
        fd = kernel.sys_open("/f")
        count, data = kernel.sys_read(fd, 100)
        assert data == b"abc"

    def test_stdin_getchar_and_eof(self):
        kernel = Kernel(config=KernelConfig(stdin_data=b"xy"))
        assert kernel.sys_getchar() == ord("x")
        assert kernel.sys_getchar() == ord("y")
        assert kernel.sys_getchar() == -1

    def test_stdout_capture(self):
        kernel = Kernel()
        kernel.sys_write(1, b"hello")
        assert kernel.stdout_text() == "hello"

    def test_mk_syscalls_record_trace(self):
        kernel = Kernel()
        assert kernel.sys_mkdir("/d") == 0
        assert kernel.sys_mkdir("/d") == -1
        assert kernel.sys_mkfifo("/p") == 0
        assert kernel.sys_mknod("/n") == 0
        kinds = [event.kind for event in kernel.trace]
        assert kinds.count(SyscallKind.MKDIR) == 2
        assert SyscallKind.MKFIFO in kinds
        assert SyscallKind.MKNOD in kinds


class TestKernelNetwork:
    def make_kernel(self, requests):
        net = NetworkModel(NetworkScript.from_requests(requests))
        return Kernel(network=net)

    def test_select_reports_listen_then_connection(self):
        kernel = self.make_kernel([b"GET / HTTP/1.0\r\n\r\n"])
        listen_fd = kernel.sys_listen()
        ready = kernel.sys_select()
        assert ready == listen_fd
        conn_fd = kernel.sys_accept(listen_fd)
        assert conn_fd > listen_fd
        ready = kernel.sys_select()
        assert ready == conn_fd

    def test_recv_drains_request(self):
        kernel = self.make_kernel([b"abcdef"])
        listen_fd = kernel.sys_listen()
        kernel.sys_select()
        conn_fd = kernel.sys_accept(listen_fd)
        count, data = kernel.sys_recv(conn_fd, 4)
        assert data == b"abcd"
        count, data = kernel.sys_recv(conn_fd, 4)
        assert data == b"ef"

    def test_accept_without_pending_connection(self):
        kernel = self.make_kernel([])
        listen_fd = kernel.sys_listen()
        assert kernel.sys_accept(listen_fd) == -1

    def test_send_records_response(self):
        kernel = self.make_kernel([b"x"])
        listen_fd = kernel.sys_listen()
        kernel.sys_select()
        conn_fd = kernel.sys_accept(listen_fd)
        assert kernel.sys_send(conn_fd, b"pong") == 4

    def test_workload_finished_after_drain_and_idle(self):
        kernel = self.make_kernel([b"zz"])
        listen_fd = kernel.sys_listen()
        kernel.sys_select()
        conn_fd = kernel.sys_accept(listen_fd)
        kernel.sys_recv(conn_fd, 10)
        assert kernel.workload_finished()

    def test_syscall_trace_sequencing(self):
        kernel = self.make_kernel([b"q"])
        kernel.sys_listen()
        kernel.sys_select()
        sequences = [event.sequence for event in kernel.trace]
        assert sequences == sorted(sequences)
