"""Differential parity for plan-specialized bytecode and parallel replay.

The VM may compile a different instruction stream per
:class:`InstrumentationPlan` (``BRANCH_LOGGED`` / ``BRANCH_BARE``) and run its
bitvector bookkeeping inline, and the replay engine may spread its search
over a speculative worker pool — but none of that is allowed to be
*observable*: for every workload and for empty / partial / full plans, the
recorded bitvectors, syscall logs, per-location statistics, crash sites and
the entire explored replay search tree must match the unspecialized
tree-walking interpreter bit for bit, and a parallel search must explore
exactly the runs the serial one does.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Pipeline
from repro.environment import simple_environment
from repro.instrument.logger import BranchLogger
from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig
from repro.lang.program import Program
from repro.replay.budget import ReplayBudget
from repro.replay.engine import ReplayEngine
from repro.symbolic import solver as solver_mod
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.expr import SymBinOp, SymConst, sym_var
from repro.vm import opcodes as op
from repro.vm.compiler import cache_stats, compile_program, reset_cache_stats
from repro.workloads import all_cases, diffutil, userver
from repro.workloads.coreutils import ALL_PROGRAMS

CASES = all_cases()
CASE_IDS = [name for name, _, _ in CASES]

_PROGRAMS = {}


def program_for(name: str, source: str) -> Program:
    key = name.rsplit("-", 1)[0]
    if key not in _PROGRAMS:
        _PROGRAMS[key] = Program.from_source(source, name=key)
    return _PROGRAMS[key]


def plan_variants(program: Program):
    """Empty, partial (every other location) and full instrumentation plans."""

    locations = sorted(program.branch_locations)
    return {
        "empty": build_plan(InstrumentationMethod.NONE, program.branch_locations),
        "partial": build_plan(InstrumentationMethod.ALL_BRANCHES,
                              program.branch_locations).__class__.from_sets(
                                  "partial", locations[::2], locations),
        "full": build_plan(InstrumentationMethod.ALL_BRANCHES,
                           program.branch_locations),
    }


def record_fingerprint(program: Program, environment, plan, backend: str,
                       specialize: bool) -> tuple:
    logger = BranchLogger(plan)
    executor = create_backend(
        program,
        kernel=environment.make_kernel(),
        hooks=logger,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend=backend,
                               specialize_plans=specialize),
    )
    result = executor.run(environment.argv)
    crash = None
    if result.crash is not None:
        crash = (result.crash.function, result.crash.line, result.crash.message)
    return (
        result.exit_code, result.steps, result.branch_executions,
        result.symbolic_branch_executions, result.syscall_count,
        result.stdout, crash,
        tuple(logger.bitvector),
        logger.bitvector.flushes,
        tuple(sorted((kind.value, tuple(values)) for kind, values
                     in logger.syscall_log.results.items())),
        logger.instrumented_executions,
        logger.total_branch_executions,
        tuple(sorted((loc.function, loc.node_id, count) for loc, count
                     in logger.per_location_executions.items())),
    )


# ---------------------------------------------------------------------------
# Recording parity: specialized VM vs interpreter, across plan shapes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("plan_kind", ["empty", "partial", "full"])
@pytest.mark.parametrize("name, source, environment", CASES, ids=CASE_IDS)
def test_specialized_recording_parity(name, source, environment, plan_kind):
    program = program_for(name, source)
    plan = plan_variants(program)[plan_kind]
    reference = record_fingerprint(program, environment, plan, "interp", True)
    specialized = record_fingerprint(program, environment, plan, "vm", True)
    unspecialized = record_fingerprint(program, environment, plan, "vm", False)
    assert specialized == reference
    assert unspecialized == reference


# ---------------------------------------------------------------------------
# Replay-search parity: the explored tree is identical across engines
# ---------------------------------------------------------------------------


def outcome_fingerprint(outcome) -> tuple:
    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced, outcome.runs, outcome.solver_calls,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


def replay_search(pipeline, recording, backend: str, specialize: bool,
                  workers: int, plan=None, max_runs: int = 400):
    engine = ReplayEngine(
        program=pipeline.program,
        plan=plan or recording.plan,
        bitvector=recording.bitvector,
        syscall_log=recording.syscall_log if recording.plan.log_syscalls else None,
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        # Run-count bounded (not wall-clock bounded) so the termination point
        # is deterministic across engines and machines.
        budget=ReplayBudget(max_runs=max_runs, max_seconds=600),
        backend=backend,
        workers=workers,
        specialize_plans=specialize,
    )
    return engine.reproduce()


REPLAY_SCENARIOS = {
    "mkdir": lambda: (ALL_PROGRAMS["mkdir"].SOURCE,
                      ALL_PROGRAMS["mkdir"].bug_scenario(), frozenset()),
    "paste": lambda: (ALL_PROGRAMS["paste"].SOURCE,
                      ALL_PROGRAMS["paste"].bug_scenario(), frozenset()),
    "diff": lambda: (diffutil.SOURCE, diffutil.experiment_1(), frozenset()),
    "userver": lambda: (userver.SOURCE, userver.experiment(1),
                        frozenset(userver.LIBRARY_FUNCTIONS)),
}


@pytest.mark.parametrize("workload", sorted(REPLAY_SCENARIOS))
def test_replay_search_parity(workload):
    source, environment, lib = REPLAY_SCENARIOS[workload]()
    pipeline = Pipeline.from_source(
        source, name=f"spec-{workload}",
        config=PipelineConfig(library_functions=set(lib)))
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    reference = outcome_fingerprint(
        replay_search(pipeline, recording, "interp", True, 1))
    for backend, specialize, workers in (("vm", False, 1), ("vm", True, 1),
                                         ("vm", True, 4)):
        outcome = replay_search(pipeline, recording, backend, specialize, workers)
        assert outcome_fingerprint(outcome) == reference, (
            f"{workload}: {backend}/specialize={specialize}/workers={workers} "
            f"diverged from the interpreter search")
    assert reference[0], f"{workload}: search did not reproduce the crash"


def test_parallel_replay_determinism_with_fat_pending():
    """A partial plan fans the pending list out; workers must not change it."""

    source, environment, lib = REPLAY_SCENARIOS["userver"]()
    pipeline = Pipeline.from_source(
        source, name="spec-userver-partial",
        config=PipelineConfig(library_functions=set(lib)))
    locations = sorted(pipeline.program.branch_locations)
    partial = build_plan(InstrumentationMethod.ALL_BRANCHES,
                         pipeline.program.branch_locations).from_sets(
                             "partial", locations[::2], locations)
    recording = pipeline.record(partial, environment)
    serial = replay_search(pipeline, recording, "vm", True, 1, max_runs=40)
    parallel = replay_search(pipeline, recording, "vm", True, 4, max_runs=40)
    assert outcome_fingerprint(serial) == outcome_fingerprint(parallel)
    # The pool actually speculated (the search has a fat pending list), yet
    # the explored tree is still byte-identical to the serial engine's.
    assert parallel.speculated_items > 0
    assert serial.speculated_items == 0


def test_pipeline_threads_workers_and_specialization():
    module = ALL_PROGRAMS["mkfifo"]
    outcomes = {}
    for workers, specialize in ((1, False), (4, True)):
        config = PipelineConfig(backend="vm", replay_workers=workers,
                                specialize_plans=specialize)
        pipeline = Pipeline.from_source(module.SOURCE, name="mkfifo-cfg",
                                        config=config)
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=module.bug_scenario())
        recording = pipeline.record(plan, module.bug_scenario())
        report = pipeline.reproduce(recording)
        outcomes[(workers, specialize)] = outcome_fingerprint(report.outcome)
        assert report.outcome.workers == workers
    assert outcomes[(1, False)] == outcomes[(4, True)]


# ---------------------------------------------------------------------------
# The plan-aware compiled-code cache
# ---------------------------------------------------------------------------


def test_compile_cache_is_plan_aware():
    program = Program.from_source(diffutil.SOURCE, name="cache-probe")
    locations = sorted(program.branch_locations)
    empty = build_plan(InstrumentationMethod.NONE, program.branch_locations)
    full = build_plan(InstrumentationMethod.ALL_BRANCHES, program.branch_locations)
    partial = full.from_sets("partial", locations[::2], locations)

    reset_cache_stats()
    unspecialized = compile_program(program)
    code_empty = compile_program(program, empty)
    code_full = compile_program(program, full)
    code_partial = compile_program(program, partial)
    assert cache_stats() == {"hits": 0, "misses": 4}

    # Hits return the identical object for the identical plan fingerprint...
    assert compile_program(program, full) is code_full
    assert compile_program(program) is unspecialized
    # ...including a *different* plan object with the same instrumented set.
    refreshed = full.from_sets("renamed", full.instrumented, full.all_locations,
                               log_syscalls=False)
    assert compile_program(program, refreshed) is code_full
    assert cache_stats() == {"hits": 3, "misses": 4}

    # Stale specialization can never leak across plans: every variant is a
    # distinct code object stamped with its own fingerprint.
    variants = {id(c) for c in (unspecialized, code_empty, code_full, code_partial)}
    assert len(variants) == 4
    assert unspecialized.plan_fingerprint is None
    assert code_full.plan_fingerprint == full.fingerprint()
    assert code_partial.plan_fingerprint == partial.fingerprint()
    assert len(code_full.logged_locations) == len(locations)
    assert len(code_partial.logged_locations) == len(locations[::2])
    assert not code_empty.logged_locations


def test_specialized_opcodes_follow_the_plan():
    source = """
        int main(int argc, char **argv) {
            int i; int total = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i > argc) { total = total + i; }
            }
            return total;
        }
    """
    program = Program.from_source(source, name="opcode-probe")
    locations = sorted(program.branch_locations)
    partial = build_plan(InstrumentationMethod.ALL_BRANCHES,
                         program.branch_locations).from_sets(
                             "partial", locations[:1], locations)
    specialized = compile_program(program, partial)
    opcodes = [instr[0] for code in specialized.functions.values()
               for instr in code.instructions]
    # Branches count whether they compiled standalone or fused into a
    # compare-and-branch superinstruction (the `i > argc` slot comparison).
    logged = (opcodes.count(op.BRANCH_LOGGED)
              + opcodes.count(op.BINOP_FF_BRANCH_LOGGED))
    bare = (opcodes.count(op.BRANCH_BARE)
            + opcodes.count(op.BINOP_FF_BRANCH_BARE))
    assert logged == 1
    assert bare == len(locations) - 1
    assert op.BRANCH not in opcodes and op.BINOP_FF_BRANCH not in opcodes

    unspecialized = compile_program(program)
    plain = [instr[0] for code in unspecialized.functions.values()
             for instr in code.instructions]
    assert (plain.count(op.BRANCH)
            + plain.count(op.BINOP_FF_BRANCH)) == len(locations)
    for specialized_only in (op.BRANCH_LOGGED, op.BRANCH_BARE,
                             op.BINOP_FF_BRANCH_LOGGED,
                             op.BINOP_FF_BRANCH_BARE):
        assert specialized_only not in plain


def test_superinstructions_emitted():
    source = """
        int bump(int n) { int r = n * 2; return r; }
        int main() {
            int i = 0; int total = 0;
            while (i < 8) { total = total + i; i = i + 1; }
            return bump(total);
        }
    """
    program = Program.from_source(source, name="fusion-probe")
    # With register allocation (the default) every local here is slotted, so
    # the fused shapes come out in their slot-indexed variants ...
    compiled = compile_program(program)
    opcodes = [instr[0] for code in compiled.functions.values()
               for instr in code.instructions]
    assert op.BINOP_FC_STORE in opcodes   # i = i + 1
    assert op.BINOP_FF_STORE in opcodes   # total = total + i
    assert op.LOAD_FAST_RET in opcodes    # return r;
    # ... and on the named-cell path (resolution disabled) in the legacy ones.
    unresolved = compile_program(program, resolve=False)
    named = [instr[0] for code in unresolved.functions.values()
             for instr in code.instructions]
    assert op.BINOP_NC_STORE in named
    assert op.BINOP_NN_STORE in named
    assert op.LOAD_RET in named


def _opcode_stream(compiled):
    return [instr[0] for code in compiled.functions.values()
            for instr in code.instructions]


def test_compare_and_branch_superinstruction_parity():
    """``BINOP_FF;BRANCH_*`` fuses for ``while (i < n)`` and changes nothing
    observable: identical results, events and bitvectors across the
    interpreter, the fused VM and the fusion-disabled VM."""

    source = """
        int main(int argc, char **argv) {
            int n = strlen(argv[1]);
            int target = 120;
            int i = 0;
            int hits = 0;
            while (i < n) {
                int c = argv[1][i];
                if (c == target) { hits = hits + 1; }
                i = i + 1;
            }
            if (hits >= 2) { crash("cmp-branch"); }
            return hits;
        }
    """
    program = Program.from_source(source, name="cmp-branch-probe")

    # Emission: both slot-slot comparisons fuse — the concrete loop bound
    # (`i < n`) and the input-dependent character test (`c == target`).
    fused = _opcode_stream(compile_program(program))
    assert fused.count(op.BINOP_FF_BRANCH) == 2
    # ... the knob restores the unfused pair ...
    plain = _opcode_stream(compile_program(program, cmp_branch=False))
    assert op.BINOP_FF_BRANCH not in plain
    assert op.BINOP_FF in plain and op.BRANCH in plain
    # ... and plan-specialized code fuses into the logged/bare variants.
    plan = build_plan(InstrumentationMethod.ALL_BRANCHES,
                      program.branch_locations)
    specialized = _opcode_stream(compile_program(program, plan))
    assert op.BINOP_FF_BRANCH_LOGGED in specialized

    # Record-mode differential on all three substrates.
    environment = simple_environment(["cmp", "axbx"], name="cmp-branch")
    fingerprints = {}
    for label, backend, fuse in (("interp", "interp", True),
                                 ("vm-fused", "vm", True),
                                 ("vm-unfused", "vm", False)):
        logger = BranchLogger(plan)
        executor = create_backend(
            program,
            kernel=environment.make_kernel(),
            hooks=logger,
            binder=InputBinder(mode=ExecutionMode.RECORD),
            config=ExecutionConfig(mode=ExecutionMode.RECORD, backend=backend,
                                   fuse_compare_branch=fuse))
        result = executor.run(environment.argv)
        crash = ((result.crash.function, result.crash.line)
                 if result.crash else None)
        fingerprints[label] = (
            result.steps, result.branch_executions,
            result.symbolic_branch_executions, result.crashed, crash,
            list(logger.bitvector), logger.instrumented_executions)
    assert fingerprints["vm-fused"] == fingerprints["interp"]
    assert fingerprints["vm-unfused"] == fingerprints["interp"]
    assert fingerprints["interp"][3] is True  # the probe crash fired

    # Replay parity: the replay run binds the argument bytes symbolically, so
    # the fused opcode's symbolic slow path drives the search — and the fused
    # VM must explore the identical tree the interpreter does.
    logger = BranchLogger(plan)
    executor = create_backend(
        program, kernel=environment.make_kernel(), hooks=logger,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend="vm"))
    recorded = executor.run(environment.argv)
    outcomes = {}
    for backend in ("interp", "vm"):
        engine = ReplayEngine(
            program=program, plan=plan, bitvector=logger.bitvector,
            syscall_log=logger.syscall_log, crash_site=recorded.crash,
            environment=environment.scaffold(),
            budget=ReplayBudget.quick(), backend=backend)
        outcomes[backend] = engine.reproduce()
    assert outcomes["vm"].reproduced

    def tree(outcome):
        return (outcome.reproduced, outcome.runs,
                tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
                      for r in outcome.run_records),
                tuple(sorted(outcome.found_input.items())))

    assert tree(outcomes["vm"]) == tree(outcomes["interp"])


def test_pipeline_threads_fuse_compare_branch_knob():
    """``PipelineConfig(fuse_compare_branch=False)`` must actually reach the
    VM: every compilation a pipeline run triggers carries the unfused cache
    key, so the knob can never silently no-op."""

    from repro.workloads.coreutils import mkdir

    pipeline = Pipeline.from_source(
        mkdir.SOURCE, name="mkdir-nofuse",
        config=PipelineConfig(backend="vm", fuse_compare_branch=False))
    environment = mkdir.bug_scenario()
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    report = pipeline.reproduce(recording)
    assert report.outcome.reproduced
    cache = getattr(pipeline.program, "_vm_compiled_by_plan")
    assert cache, "pipeline never compiled anything"
    assert all(key[2] is False for key in cache), sorted(cache)


# ---------------------------------------------------------------------------
# The incremental constraint search vs the legacy reference
# ---------------------------------------------------------------------------


def test_incremental_search_matches_legacy_reference():
    rng = random.Random(20260730)
    operators = ["==", "!=", "<", "<=", ">", ">="]
    for _ in range(120):
        variable_count = rng.randint(1, 6)
        variables = [sym_var(f"v{i}", 0, 255) for i in range(variable_count)]
        constraints = ConstraintSet()
        for origin in range(rng.randint(1, 10)):
            left = rng.choice(variables)
            if variable_count > 1 and rng.random() < 0.3:
                expr = SymBinOp(rng.choice(operators), left, rng.choice(variables))
            else:
                expr = SymBinOp(rng.choice(operators), left,
                                SymConst(rng.randint(0, 255)))
            constraints.add_expr(expr, origin=origin)
        hint = {f"v{i}": rng.randint(0, 255) for i in range(variable_count)
                if rng.random() < 0.7}
        previous = solver_mod.set_search_impl("legacy")
        try:
            legacy = solver_mod.solve(constraints, hint=hint)
        finally:
            solver_mod.set_search_impl(previous)
        fast = solver_mod.solve(constraints, hint=hint)
        assert (legacy.satisfiable, legacy.assignment) == (
            fast.satisfiable, fast.assignment)


# ---------------------------------------------------------------------------
# The replay scaffold's structural argv
# ---------------------------------------------------------------------------


def test_scaffold_keeps_path_arguments_only():
    environment = simple_environment(
        ["diff", "/old.txt", "secret-flag"],
        files={"/old.txt": b"alpha\n"}, name="scaffold-probe")
    scaffold = environment.scaffold()
    assert scaffold.argv[0] == "diff"
    assert scaffold.argv[1] == "/old.txt"          # path: structural, kept
    assert scaffold.argv[2] == "A" * len("secret-flag")  # data: blanked
    kernel = scaffold.make_kernel()
    entry = kernel.fs.get("/old.txt")
    assert entry is not None and bytes(entry.data) == b"A" * len(b"alpha\n")
