"""Tests for CFG construction, branch locations and the Program container."""

import pytest

from repro.lang.cfg import build_cfg, enumerate_branch_locations
from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.program import Program

SOURCE = """
int helper(int x) {
    if (x > 0) {
        return 1;
    }
    return 0;
}

int unused(int x) {
    while (x > 0) {
        x = x - 1;
    }
    return x;
}

int main(int argc, char **argv) {
    int i;
    int total = 0;
    for (i = 0; i < argc; i = i + 1) {
        total = total + helper(i);
    }
    if (total > 2) {
        printf("big\\n");
    }
    return 0;
}
"""


class TestCFG:
    def test_every_function_gets_a_cfg(self):
        program = Program.from_source(SOURCE)
        assert set(program.cfgs) == {"helper", "unused", "main"}

    def test_entry_reaches_exit(self):
        program = Program.from_source(SOURCE)
        cfg = program.cfgs["main"]
        reachable = cfg.reachable_blocks()
        assert cfg.entry_id in reachable
        assert cfg.exit_id in reachable

    def test_branch_blocks_match_branch_locations(self):
        program = Program.from_source(SOURCE)
        cfg = program.cfgs["main"]
        branch_ids = {block.branch.node_id for block in cfg.branch_blocks()}
        location_ids = {b.node_id for b in program.branches_in_function("main")}
        assert branch_ids == location_ids

    def test_if_block_has_two_successors(self):
        unit = parse_program("int main() { if (1) { return 1; } return 0; }")
        cfg = build_cfg(unit.functions[0])
        branch_block = cfg.branch_blocks()[0]
        assert len(branch_block.successors) == 2

    def test_while_loop_has_back_edge(self):
        unit = parse_program("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }")
        cfg = build_cfg(unit.functions[0])
        edges = set(cfg.edges())
        header = cfg.branch_blocks()[0].block_id
        assert any(dst == header for (src, dst) in edges if src != header)

    def test_break_jumps_out_of_loop(self):
        unit = parse_program("int main() { while (1) { break; } return 0; }")
        cfg = build_cfg(unit.functions[0])
        assert cfg.exit_id in cfg.reachable_blocks()


class TestBranchLocations:
    def test_enumeration_is_sorted_and_stable(self):
        unit = parse_program(SOURCE)
        locations = enumerate_branch_locations(unit)
        assert locations == sorted(locations)
        assert len(locations) == 4

    def test_kinds(self):
        unit = parse_program(SOURCE)
        kinds = sorted(loc.kind for loc in enumerate_branch_locations(unit))
        assert kinds == ["for", "if", "if", "while"]

    def test_short_labels_contain_function_and_line(self):
        unit = parse_program(SOURCE)
        labels = [loc.short() for loc in enumerate_branch_locations(unit)]
        assert any(label.startswith("main:") for label in labels)
        assert any(label.startswith("helper:") for label in labels)


class TestProgram:
    def test_requires_main(self):
        with pytest.raises(SemanticError):
            Program.from_source("int helper() { return 0; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            Program.from_source("int main() { return 0; } int main() { return 1; }")

    def test_call_graph_and_reachability(self):
        program = Program.from_source(SOURCE)
        graph = program.call_graph()
        assert "helper" in graph["main"]
        reachable = program.reachable_functions()
        assert "helper" in reachable
        assert "unused" not in reachable

    def test_library_split(self):
        program = Program.from_source(SOURCE, library_functions={"helper"})
        lib = program.library_branches()
        app = program.application_branches()
        assert all(b.function == "helper" for b in lib)
        assert all(b.function != "helper" for b in app)
        assert len(lib) + len(app) == len(program.branch_locations)

    def test_describe_contains_counts(self):
        program = Program.from_source(SOURCE)
        info = program.describe()
        assert info["functions"] == 3
        assert info["branch_locations"] == 4
        assert info["source_lines"] > 10
