"""Tests for the persistent trace format (save/load, identity, corruption)."""

import pickle
import struct

import pytest

from repro import (
    InstrumentationMethod,
    InstrumentationPlan,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
    TraceFingerprintMismatch,
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_recording,
)
from repro.replay.engine import ReplayEngine
from repro.trace import (
    EnvironmentSpec,
    dump_trace_bytes,
    load_trace_bytes,
)
from repro.workloads import diffutil, userver
from repro.workloads.coreutils import mkdir
from tests.conftest import GUARD_SOURCE

WORKLOADS = [
    ("guard", GUARD_SOURCE, None, frozenset()),
    ("diff", diffutil.SOURCE, diffutil.experiment_1(), frozenset()),
    ("userver", userver.SOURCE, userver.experiment(2),
     frozenset(userver.LIBRARY_FUNCTIONS)),
]


def record_workload(name, source, environment, library):
    from repro.environment import simple_environment

    if environment is None:
        environment = simple_environment(["guard", "crash"], name="guard-crash")
    pipeline = Pipeline.from_source(
        source, name=name, config=PipelineConfig(library_functions=set(library)))
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    return pipeline, plan, recording


@pytest.fixture(scope="module")
def diff_recording():
    return record_workload("diff", diffutil.SOURCE, diffutil.experiment_1(),
                           frozenset())


class TestRoundTrip:
    @pytest.mark.parametrize("name,source,environment,library", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_logs_are_bit_exact(self, name, source, environment, library):
        pipeline, plan, recording = record_workload(name, source, environment,
                                                    library)
        trace = trace_from_recording(recording, program_name=name)
        back = load_trace_bytes(dump_trace_bytes(trace), expect_plan=plan)
        assert list(back.bitvector) == list(recording.bitvector)
        assert back.bitvector.flushes == recording.bitvector.flushes
        assert back.syscall_log.to_payload() == recording.syscall_log.to_payload()
        assert back.syscall_log.logged_kinds == recording.syscall_log.logged_kinds
        assert back.plan.fingerprint() == plan.fingerprint()
        assert back.plan.method == plan.method
        assert back.plan.all_locations == plan.all_locations
        if recording.crash_site is None:
            assert back.crash_site is None
        else:
            assert back.crash_site.same_location(recording.crash_site)
            assert back.crash_site.message == recording.crash_site.message
        assert back.program_name == name
        assert back.scenario == recording.environment.name

    def test_file_round_trip(self, tmp_path, diff_recording):
        pipeline, plan, recording = diff_recording
        trace = trace_from_recording(recording, program_name="diff")
        path = str(tmp_path / "diff.trace")
        assert save_trace(path, trace) == path
        back = load_trace(path, expect_plan=plan)
        assert list(back.bitvector) == list(recording.bitvector)

    def test_scaffold_blanks_user_data(self, diff_recording):
        _, _, recording = diff_recording
        trace = trace_from_recording(recording)
        contents = {path: data for path, data, _, _ in
                    trace.environment_spec.files}
        # Structure (paths, sizes) survives; contents do not.
        assert set(contents) == {"/old.txt", "/new.txt"}
        for path, data in contents.items():
            assert len(data) == len(diffutil.EXP1_FILES[path])
            assert data != diffutil.EXP1_FILES[path]
        # Path-naming argv entries stay verbatim (the scaffold contract).
        assert trace.environment_spec.argv[1:] == ("/old.txt", "/new.txt")

    def test_replay_from_loaded_trace_reproduces(self, diff_recording):
        pipeline, plan, recording = diff_recording
        data = dump_trace_bytes(trace_from_recording(recording))
        trace = load_trace_bytes(data, expect_plan=plan)
        # A *fresh* pipeline over the same source stands in for the developer
        # machine's copy of the binary.
        developer = Pipeline.from_source(diffutil.SOURCE, name="diff")
        report = developer.reproduce_from_trace(
            trace, budget=ReplayBudget(max_runs=500, max_seconds=30),
            expect_plan=plan)
        assert report.outcome.reproduced
        assert report.outcome.crash_site.same_location(recording.crash_site)
        assert report.scenario == recording.environment.name


class TestBinaryIdentity:
    def test_fingerprint_mismatch_rejected(self, diff_recording):
        pipeline, plan, recording = diff_recording
        data = dump_trace_bytes(trace_from_recording(recording))
        fewer = list(plan.instrumented)[:-2]
        other = InstrumentationPlan.from_sets(plan.method, fewer,
                                              plan.all_locations)
        with pytest.raises(TraceFingerprintMismatch) as excinfo:
            load_trace_bytes(data, expect_plan=other)
        assert "matched binaries" in str(excinfo.value)

    def test_same_branch_set_different_options_accepted(self, diff_recording):
        # The fingerprint is the instrumented branch set: syscall-logging
        # options do not change binary identity.
        pipeline, plan, recording = diff_recording
        data = dump_trace_bytes(trace_from_recording(recording))
        load_trace_bytes(data, expect_plan=plan.without_syscall_logging())

    def test_engine_rejects_foreign_program(self, diff_recording):
        pipeline, plan, recording = diff_recording
        trace = load_trace_bytes(dump_trace_bytes(trace_from_recording(recording)))
        other = Pipeline.from_source(mkdir.SOURCE, name="mkdir")
        with pytest.raises(TraceFingerprintMismatch):
            ReplayEngine.from_trace(other.program, trace)

    def test_branch_ids_pure_under_concurrent_parsing(self):
        """Node ids must be a function of the source even with parallel parses.

        The fingerprint check is only sound if two parses of the same source
        agree on branch identities; the parse lock keeps the global node-id
        counter from interleaving across threads.
        """

        import threading

        from repro.lang.program import Program

        reference = Program.from_source(diffutil.SOURCE).branch_locations
        results = []
        barrier = threading.Barrier(4)

        def parse():
            barrier.wait()
            results.append(Program.from_source(diffutil.SOURCE).branch_locations)

        threads = [threading.Thread(target=parse) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(locations == reference for locations in results)

    def test_pipeline_reproduce_checks_plan(self, diff_recording):
        pipeline, plan, recording = diff_recording
        trace = load_trace_bytes(dump_trace_bytes(trace_from_recording(recording)))
        other = Pipeline.from_source(mkdir.SOURCE, name="mkdir")
        wrong_plan = other.make_plan(InstrumentationMethod.ALL_BRANCHES)
        with pytest.raises(TraceFingerprintMismatch):
            pipeline.reproduce_from_trace(trace, expect_plan=wrong_plan)


class TestCorruption:
    @pytest.fixture(scope="class")
    def blob(self):
        _, _, recording = record_workload("diff", diffutil.SOURCE,
                                          diffutil.experiment_1(), frozenset())
        return dump_trace_bytes(trace_from_recording(recording))

    def test_bad_magic(self, blob):
        with pytest.raises(TraceFormatError, match="bad magic"):
            load_trace_bytes(b"NOTTRACE" + blob[8:])

    def test_unsupported_version(self, blob):
        bumped = blob[:8] + struct.pack("<I", 99) + blob[12:]
        with pytest.raises(TraceFormatError, match="version 99"):
            load_trace_bytes(bumped)

    @pytest.mark.parametrize("keep", [4, 12, 30])
    def test_truncated(self, blob, keep):
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_bytes(blob[:keep])

    def test_truncated_payload(self, blob):
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_bytes(blob[:-10])

    def test_bit_rot_detected_by_checksum(self, blob):
        for offset in (40, len(blob) // 2, len(blob) - 5):
            flipped = bytearray(blob)
            flipped[offset] ^= 0x40
            with pytest.raises(TraceFormatError, match="checksum"):
                load_trace_bytes(bytes(flipped))

    def test_trailing_garbage(self, blob):
        with pytest.raises(TraceFormatError, match="trailing"):
            load_trace_bytes(blob + b"extra")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))


class TestEnvironmentSpec:
    def test_capture_rebuild_identical_kernels(self):
        env = userver.experiment(2)
        spec = EnvironmentSpec.capture(env)
        original = env.make_kernel()
        rebuilt = spec.to_environment().make_kernel()
        assert rebuilt.fs.snapshot() == original.fs.snapshot()
        assert rebuilt.config.stdin_data == original.config.stdin_data
        assert rebuilt.config.read_chunk_limit == original.config.read_chunk_limit
        assert rebuilt.config.max_idle_selects == original.config.max_idle_selects
        originals = original.net.script.connections
        rebuilts = rebuilt.net.script.connections
        assert [(c.request, c.arrival_step, list(c.chunks)) for c in rebuilts] == \
               [(c.request, c.arrival_step, list(c.chunks)) for c in originals]

    def test_kinds_and_modes_survive(self):
        from repro.environment import Environment
        from repro.osmodel.filesystem import FileSystem
        from repro.osmodel.kernel import Kernel

        def factory():
            kernel = Kernel()
            kernel.fs.add_file("/plain.txt", b"abc")
            kernel.fs.mkdir("/dir", mode=0o750)
            kernel.fs.mknod("/dev.node", mode=0o600, kind="node")
            return kernel

        spec = EnvironmentSpec.capture(Environment(argv=["x"], kernel_factory=factory))
        rebuilt = spec.to_environment().make_kernel()
        for path in ("/plain.txt", "/dir", "/dev.node"):
            original, clone = factory().fs.get(path), rebuilt.fs.get(path)
            assert (original.kind, original.mode, original.data) == \
                   (clone.kind, clone.mode, clone.data)

    def test_spec_and_environment_pickle(self):
        spec = EnvironmentSpec.capture(diffutil.experiment_1())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        env = pickle.loads(pickle.dumps(clone.to_environment()))
        assert env.make_kernel().fs.snapshot() == \
               spec.to_environment().make_kernel().fs.snapshot()
