"""Crash-recovery: SIGKILL the live server mid-ingest, restart, verify.

The crash harness runs the real CLI entry point (``python -m repro serve``)
in a subprocess with an injected crash point — the server SIGKILLs *itself*
the first time execution reaches the named location, the deterministic
stand-in for ``kill -9`` landing at exactly that moment.  A restart on the
same root must then recover to a state where:

* no **acknowledged** trace is lost (an acked upload is always in the inbox
  after restart, directly or via journal + partition-poll recovery);
* nothing is ingested twice (the client's idempotent retry dedups against
  the recovered state instead of re-ingesting);
* no cluster is searched twice (one search per cluster, ever — a second
  process call runs zero searches).

The five crash points cover every window of the ack protocol::

    temp write -> BEGIN -> [spool.after_begin] -> rename ->
    [spool.after_replace] -> COMMIT -> [net.after_commit] ->
    inbox ingest -> [net.after_ingest] -> ack sent -> [net.after_ack]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import UploadClient, UploadFailed, UploadServer

from test_net import net_config, record_trace_bytes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: crash point -> (upload is acked, restart recovers a spool file,
#:                 inbox already holds the trace after restart)
CRASH_POINTS = {
    "spool.after_begin": (False, False, False),
    "spool.after_replace": (False, True, True),
    "net.after_commit": (False, True, True),
    "net.after_ingest": (False, False, True),
    "net.after_ack": (True, False, True),
}


@pytest.fixture(scope="module")
def mkdir_bytes() -> bytes:
    return record_trace_bytes("mkdir-bug")


def launch_server(root: str, port_file: str, crash_points=(),
                  extra_args=()) -> subprocess.Popen:
    argv = [sys.executable, "-m", "repro", "serve", "--root", root,
            "--port-file", port_file]
    if crash_points:
        argv += ["--faults", json.dumps({"crash_points": list(crash_points)})]
    argv += list(extra_args)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(argv, env=env, cwd=REPO_ROOT,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def wait_for_port(port_file: str, proc: subprocess.Popen,
                  timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(port_file):
            return int(open(port_file).read().strip())
        if proc.poll() is not None:
            raise AssertionError(
                f"server died before binding: {proc.stderr.read().decode()}")
        time.sleep(0.05)
    raise AssertionError("server never wrote its port file")


def wait_for_death(proc: subprocess.Popen, timeout: float = 30.0) -> int:
    try:
        proc.wait(timeout=timeout)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    return proc.returncode


@pytest.mark.parametrize("crash_point", sorted(CRASH_POINTS))
def test_sigkill_mid_ingest_recovers_exactly_once(tmp_path, mkdir_bytes,
                                                  crash_point):
    acked, recovers_spool_file, ingested_before_crash = \
        CRASH_POINTS[crash_point]
    root = str(tmp_path / "svc")
    port_file = str(tmp_path / "port")
    proc = launch_server(root, port_file, crash_points=[crash_point])
    receipt = None
    try:
        port = wait_for_port(port_file, proc)
        client = UploadClient("127.0.0.1", port, client_id="victim",
                              max_attempts=3, base_delay=0.01, timeout=10.0)
        if acked:
            receipt = client.upload(mkdir_bytes)
            assert receipt.trace_id
        else:
            # The server dies before the acknowledgement: every retry then
            # fails to connect, and the client reports honest failure --
            # nothing was promised, so nothing may be silently dropped.
            with pytest.raises((UploadFailed, OSError)):
                client.upload(mkdir_bytes)
        returncode = wait_for_death(proc)
        assert returncode == -signal.SIGKILL, (
            f"expected SIGKILL at {crash_point}, got {returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # Restart on the crashed root: journal recovery + partition poll.
    revived = UploadServer(root, config=net_config())
    try:
        assert len(revived.recovered) == (1 if recovers_spool_file else 0)
        described = revived.service.inbox.describe()
        if acked:
            # The acknowledged trace survived the kill.
            assert described["traces"] == 1
            assert receipt.trace_id in revived.service.inbox.traces
        assert described["traces"] == (1 if ingested_before_crash else 0)

        # The client retries its upload against the revived server (the
        # un-acked cases) or re-ships after a lost local state (the acked
        # case): either way, exactly one copy exists afterwards.
        revived.start()
        retry_client = UploadClient("127.0.0.1", revived.port,
                                    client_id="victim")
        retry = retry_client.upload(mkdir_bytes)
        assert retry.duplicate_upload == ingested_before_crash
        assert revived.service.inbox.describe()["traces"] == 1
        if acked:
            assert retry.trace_id == receipt.trace_id

        # One cluster, one search, ever: processing runs exactly one
        # search, and a second call runs none.
        first = retry_client.process()
        assert first["stats"]["searches_run"] == 1
        assert all(entry["reproduced"] for entry in first["reports"].values())
        again = retry_client.process()
        assert again["stats"]["searches_run"] == 1  # unchanged: no re-search
        assert again["reports"] == {}
    finally:
        revived.shutdown()


def test_sigkill_after_search_never_searches_again(tmp_path, mkdir_bytes):
    # The done-cluster half of the exactly-once contract across a hard
    # kill: search completes, reports persist, then the server is killed
    # from outside; the restarted server serves the old report and runs
    # zero new searches.
    root = str(tmp_path / "svc")
    port_file = str(tmp_path / "port")
    proc = launch_server(root, port_file)
    try:
        port = wait_for_port(port_file, proc)
        client = UploadClient("127.0.0.1", port, client_id="steady")
        receipt = client.upload(mkdir_bytes)
        processed = client.process()
        assert processed["stats"]["searches_run"] == 1
        os.kill(proc.pid, signal.SIGKILL)
        assert wait_for_death(proc) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    revived = UploadServer(root, config=net_config()).start()
    try:
        retry_client = UploadClient("127.0.0.1", revived.port,
                                    client_id="steady")
        body = retry_client.report(receipt.trace_id)
        assert body["status"] == "done"
        assert body["report"]["reproduced"]
        again = retry_client.process()
        assert again["stats"]["searches_run"] == 0
        assert again["reports"] == {}
    finally:
        revived.shutdown()


def test_sigkill_mid_search_resumes_byte_identical(tmp_path, mkdir_bytes):
    # The search half of crash recovery: the server SIGKILLs itself the
    # moment the supervisor first observes a search checkpoint on disk —
    # the deterministic stand-in for kill -9 landing mid-search.  A
    # restarted server must resume that search from the surviving snapshot
    # and fan out a report byte-identical to the undisturbed single-shot
    # run: exactly-once for searches, not just for ingests.
    import threading

    from repro.service import ReproService

    base_config = net_config()
    base_config.service.supervised = False
    with ReproService(str(tmp_path / "inline"), config=base_config) as svc:
        svc.ingest_bytes(mkdir_bytes)
        (baseline,) = svc.process().values()
    base = baseline.to_json()

    root = str(tmp_path / "svc")
    port_file = str(tmp_path / "port")
    proc = launch_server(root, port_file,
                         crash_points=["supervisor.after_checkpoint"],
                         extra_args=["--checkpoint-every", "1"])
    receipt = None
    try:
        port = wait_for_port(port_file, proc)
        client = UploadClient("127.0.0.1", port, client_id="searcher",
                              timeout=10.0)
        receipt = client.upload(mkdir_bytes)

        # process() dies with the server; run it from a thread and only
        # require that the server went down by SIGKILL with a checkpoint
        # left on disk.
        def doomed_process():
            try:
                client.process()
            except Exception:
                pass

        threading.Thread(target=doomed_process, daemon=True).start()
        assert wait_for_death(proc, timeout=60) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    checkpoints = os.listdir(os.path.join(root, "checkpoints"))
    assert any(name.endswith(".ckpt") for name in checkpoints), checkpoints

    revived = UploadServer(
        root, config=net_config(checkpoint_every_runs=1)).start()
    try:
        retry_client = UploadClient("127.0.0.1", revived.port,
                                    client_id="searcher")
        processed = retry_client.process()
        assert processed["stats"]["searches_run"] == 1
        body = retry_client.report(receipt.trace_id)
        assert body["status"] == "done"
        report = body["report"]
        for field in ("found_input", "runs", "run_records",
                      "pending_stats", "crash_site", "reproduced"):
            assert report[field] == base[field], field
        # Terminal search: its snapshot is gone, and processing again
        # runs no second search.
        leftover = os.listdir(os.path.join(root, "checkpoints"))
        assert not any(name.endswith(".ckpt") for name in leftover)
        again = retry_client.process()
        assert again["stats"]["searches_run"] == 1
        assert again["reports"] == {}
    finally:
        revived.shutdown()


def test_graceful_sigterm_drains_and_acks(tmp_path, mkdir_bytes):
    # SIGTERM (the clean counterpart of the kill -9 cases): the CLI drains
    # the ingest queue, so the just-acked upload is durable and the server
    # exits 0.
    root = str(tmp_path / "svc")
    port_file = str(tmp_path / "port")
    proc = launch_server(root, port_file)
    try:
        port = wait_for_port(port_file, proc)
        client = UploadClient("127.0.0.1", port, client_id="polite")
        receipt = client.upload(mkdir_bytes)
        proc.send_signal(signal.SIGTERM)
        assert wait_for_death(proc) == 0
        stdout = proc.stdout.read().decode()
        assert "drained" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    revived = UploadServer(root, config=net_config())
    try:
        assert revived.recovered == []
        assert receipt.trace_id in revived.service.inbox.traces
    finally:
        revived.shutdown()
