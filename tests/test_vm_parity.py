"""Differential parity: the bytecode VM vs the tree-walking interpreter.

Every workload in :mod:`repro.workloads` runs on both execution backends and
must produce *identical* observable behaviour: the :class:`ExecutionResult`
(including the step count, which the compiler charges in tree-walker units),
the branch-event stream, the syscall stream, recorded branch bitvectors and
syscall-result logs, crash sites, and full record→replay pipeline outcomes.
"""

from __future__ import annotations

import pytest

from repro import InstrumentationMethod, Pipeline, PipelineConfig
from repro.concolic.budget import ConcolicBudget
from repro.instrument.logger import BranchLogger
from repro.instrument.methods import build_plan
from repro.interp.backend import BACKENDS, create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig, Interpreter
from repro.interp.tracer import TraceRecorder
from repro.lang.program import Program
from repro.replay.budget import ReplayBudget
from repro.vm.machine import VirtualMachine
from repro.workloads import all_cases
from repro.workloads.coreutils import ALL_PROGRAMS

CASES = all_cases()
CASE_IDS = [name for name, _, _ in CASES]

_PROGRAMS = {}


def program_for(name: str, source: str) -> Program:
    """One Program per workload: both backends must share branch node ids."""

    key = name.rsplit("-", 1)[0]
    if key not in _PROGRAMS:
        _PROGRAMS[key] = Program.from_source(source, name=key)
    return _PROGRAMS[key]


def run_backend(program: Program, environment, backend: str,
                mode: ExecutionMode, hooks):
    executor = create_backend(
        program,
        kernel=environment.make_kernel(),
        hooks=hooks,
        binder=InputBinder(mode=mode),
        config=ExecutionConfig(mode=mode, backend=backend),
    )
    return executor.run(environment.argv)


def result_fingerprint(result) -> dict:
    crash = None
    if result.crash is not None:
        crash = (result.crash.function, result.crash.line, result.crash.message)
    return {
        "exit_code": result.exit_code,
        "steps": result.steps,
        "branch_executions": result.branch_executions,
        "symbolic_branch_executions": result.symbolic_branch_executions,
        "syscall_count": result.syscall_count,
        "crashed": result.crashed,
        "crash": crash,
        "step_limit_hit": result.step_limit_hit,
        "aborted": result.aborted,
        "stdout": result.stdout,
    }


def trace_fingerprint(recorder: TraceRecorder) -> list:
    events = [(event.location, event.taken, event.symbolic,
               str(event.condition), event.index)
              for event in recorder.events]
    syscalls = [(event.kind, event.result) for event in recorder.syscalls]
    return [events, syscalls]


# ---------------------------------------------------------------------------
# Raw execution parity (record and analyze modes)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", [ExecutionMode.RECORD, ExecutionMode.ANALYZE],
                         ids=["record", "analyze"])
@pytest.mark.parametrize("name, source, environment", CASES, ids=CASE_IDS)
def test_execution_parity(name, source, environment, mode):
    program = program_for(name, source)
    fingerprints = {}
    for backend in BACKENDS:
        recorder = TraceRecorder()
        result = run_backend(program, environment, backend, mode, recorder)
        fingerprints[backend] = (result_fingerprint(result),
                                 trace_fingerprint(recorder))
    assert fingerprints["vm"] == fingerprints["interp"]


# ---------------------------------------------------------------------------
# Recording parity: identical bitvectors and syscall logs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name, source, environment", CASES, ids=CASE_IDS)
def test_recording_parity(name, source, environment):
    program = program_for(name, source)
    plan = build_plan(InstrumentationMethod.ALL_BRANCHES,
                      program.branch_locations, log_syscalls=True)
    logs = {}
    for backend in BACKENDS:
        logger = BranchLogger(plan)
        result = run_backend(program, environment, backend,
                             ExecutionMode.RECORD, logger)
        logs[backend] = (result_fingerprint(result),
                         list(logger.bitvector),
                         {kind: values for kind, values
                          in logger.syscall_log.results.items()})
    assert logs["vm"] == logs["interp"]


# ---------------------------------------------------------------------------
# Crash-site parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(ALL_PROGRAMS))
def test_crash_site_parity(workload):
    """Both backends crash at the same site with the same message."""

    module = ALL_PROGRAMS[workload]
    program = program_for(workload, module.SOURCE)
    environment = module.bug_scenario()
    results = {}
    for backend in BACKENDS:
        results[backend] = run_backend(program, environment, backend,
                                       ExecutionMode.RECORD, TraceRecorder())
    interp_result, vm_result = results["interp"], results["vm"]
    assert interp_result.crashed and vm_result.crashed
    assert vm_result.exit_code == interp_result.exit_code == 139
    assert vm_result.crash.same_location(interp_result.crash)
    assert vm_result.crash.function == interp_result.crash.function
    assert vm_result.crash.line == interp_result.crash.line
    assert vm_result.crash.message == interp_result.crash.message


# ---------------------------------------------------------------------------
# Full pipeline parity: record -> replay search -> reproduction
# ---------------------------------------------------------------------------


def pipeline_fingerprint(source, environment, backend) -> dict:
    config = PipelineConfig(backend=backend,
                            concolic_budget=ConcolicBudget(max_iterations=8,
                                                           max_seconds=10))
    pipeline = Pipeline.from_source(source, name="parity", config=config)
    recording, report = pipeline.end_to_end(
        InstrumentationMethod.DYNAMIC_PLUS_STATIC, environment,
        replay_budget=ReplayBudget(max_runs=300, max_seconds=30))
    outcome = report.outcome
    crash = None
    if recording.crash_site is not None:
        crash = (recording.crash_site.function, recording.crash_site.line)
    return {
        "bits": list(recording.bitvector),
        "syscall_log": dict(recording.syscall_log.results),
        "crash": crash,
        "recording_steps": recording.execution.steps,
        "overhead_percent": round(recording.overhead.cpu_time_percent, 6),
        "reproduced": outcome.reproduced,
        "runs": outcome.runs,
        "solver_calls": outcome.solver_calls,
        "found_input": outcome.found_input,
    }


@pytest.mark.parametrize("workload", ["mkdir", "mkfifo"])
def test_pipeline_parity(workload):
    module = ALL_PROGRAMS[workload]
    fingerprints = {backend: pipeline_fingerprint(module.SOURCE,
                                                  module.bug_scenario(),
                                                  backend)
                    for backend in BACKENDS}
    assert fingerprints["vm"] == fingerprints["interp"]
    assert fingerprints["vm"]["reproduced"]


# ---------------------------------------------------------------------------
# Language-feature parity (constructs the workloads do not exercise)
# ---------------------------------------------------------------------------

FEATURE_SNIPPETS = {
    "address-of-scalar": """
        int bump(int *p) { *p = *p + 7; return *p; }
        int main() { int x = 3; int r = bump(&x); printf("%d\\n", r); return r; }
    """,
    "address-of-element": """
        int main() {
            int a[4]; int *p;
            a[2] = 5; p = &a[2]; *p = *p * 3;
            printf("%d\\n", a[2]); return a[2];
        }
    """,
    "pointer-arithmetic": """
        int main() {
            char buf[8]; char *p; char *q;
            strcpy(buf, "hive");
            p = buf + 1; q = p + 2;
            printf("%c %c %d\\n", *p, *q, q - p);
            return q > p;
        }
    """,
    "ternary-and-logic": """
        int main(int argc, char **argv) {
            int n = argc > 1 ? atoi(argv[1]) : -1;
            int ok = (n > 0 && n < 100) || n == -1;
            return ok ? n : 0;
        }
    """,
    "increments-and-compound": """
        int main() {
            int i = 0; int total = 0;
            while (i++ < 5) { total += i; }
            total -= 1; ++total;
            printf("%d\\n", total); return total;
        }
    """,
    "globals-and-shadowing": """
        int counter = 10;
        int main() {
            int x = 1;
            { int x = 2; counter = counter + x; }
            counter = counter + x;
            return counter;
        }
    """,
    "division-by-zero-crash": """
        int main(int argc, char **argv) {
            int d = argc - 1;
            return 100 / d;
        }
    """,
    "out-of-bounds-crash": """
        int main() { int a[3]; a[5] = 1; return 0; }
    """,
    "null-deref-crash": """
        int main() { int *p; p = 0; return *p; }
    """,
    "exit-builtin": """
        int main() { printf("bye\\n"); exit(42); return 0; }
    """,
    "string-builtins": """
        int main() {
            char buf[32];
            strcpy(buf, "abc"); strcat(buf, "DEF");
            printf("%s %d %d\\n", buf, strlen(buf), strcmp(buf, "abcDEF"));
            return isdigit('7') + isalpha('z') + tolower('Q');
        }
    """,
}


@pytest.mark.parametrize("feature", sorted(FEATURE_SNIPPETS))
def test_language_feature_parity(feature):
    from repro.environment import simple_environment

    program = Program.from_source(FEATURE_SNIPPETS[feature], name=feature)
    environment = simple_environment([feature, "41"], name=feature)
    fingerprints = {}
    for backend in BACKENDS:
        recorder = TraceRecorder()
        result = run_backend(program, environment, backend,
                             ExecutionMode.RECORD, recorder)
        fingerprints[backend] = (result_fingerprint(result),
                                 trace_fingerprint(recorder))
    assert fingerprints["vm"] == fingerprints["interp"]


# ---------------------------------------------------------------------------
# Register allocation: slot frames vs named-cell frames vs interpreter
# ---------------------------------------------------------------------------


def run_vm(program: Program, environment, hooks, register_allocation: bool):
    executor = create_backend(
        program,
        kernel=environment.make_kernel(),
        hooks=hooks,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend="vm",
                               register_allocation=register_allocation),
    )
    return executor.run(environment.argv)


@pytest.mark.parametrize("name, source, environment", CASES, ids=CASE_IDS)
def test_register_allocation_execution_parity(name, source, environment):
    """Slot frames change nothing observable on any workload."""

    program = program_for(name, source)
    fingerprints = {}
    for regalloc in (False, True):
        recorder = TraceRecorder()
        result = run_vm(program, environment, recorder, regalloc)
        fingerprints[regalloc] = (result_fingerprint(result),
                                  trace_fingerprint(recorder))
    interp_recorder = TraceRecorder()
    interp_result = run_backend(program, environment, "interp",
                                ExecutionMode.RECORD, interp_recorder)
    assert fingerprints[True] == fingerprints[False]
    assert fingerprints[True] == (result_fingerprint(interp_result),
                                  trace_fingerprint(interp_recorder))


@pytest.mark.parametrize("name, source, environment", CASES, ids=CASE_IDS)
def test_register_allocation_recording_parity(name, source, environment):
    """Identical bitvectors and syscall logs from plan-specialized slot code."""

    program = program_for(name, source)
    plan = build_plan(InstrumentationMethod.ALL_BRANCHES,
                      program.branch_locations, log_syscalls=True)
    logs = {}
    for regalloc in (False, True):
        logger = BranchLogger(plan)
        result = run_vm(program, environment, logger, regalloc)
        logs[regalloc] = (result_fingerprint(result),
                          list(logger.bitvector),
                          dict(logger.syscall_log.results))
    assert logs[True] == logs[False]


def _replay_outcome_fingerprint(outcome):
    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced, outcome.runs, outcome.solver_calls,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


@pytest.mark.parametrize("workers,worker_kind",
                         [(1, "thread"), (3, "thread"), (2, "process")],
                         ids=["serial", "threads", "process"])
def test_register_allocation_replay_parity(workers, worker_kind):
    """Record once, then search with slot and named-cell frames: the explored
    tree (runs, records, pending stats, reproducing input) is identical for
    every worker kind."""

    from repro.replay.engine import ReplayEngine
    from repro.workloads import userver
    from repro.workloads.coreutils import mkdir

    scenarios = [
        (mkdir.SOURCE, mkdir.bug_scenario(), frozenset()),
        (userver.SOURCE, userver.experiment(2),
         frozenset(userver.LIBRARY_FUNCTIONS)),
    ]
    for source, environment, library in scenarios:
        pipeline = Pipeline.from_source(
            source, name=environment.name,
            config=PipelineConfig(library_functions=set(library)))
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        outcomes = {}
        for regalloc in (False, True):
            engine = ReplayEngine(
                program=pipeline.program, plan=recording.plan,
                bitvector=recording.bitvector,
                syscall_log=recording.syscall_log,
                crash_site=recording.crash_site,
                environment=recording.environment.scaffold(),
                budget=ReplayBudget(max_runs=1500, max_seconds=60),
                backend="vm", workers=workers, worker_kind=worker_kind,
                register_allocation=regalloc)
            outcomes[regalloc] = engine.reproduce()
        assert outcomes[True].reproduced
        assert (_replay_outcome_fingerprint(outcomes[True])
                == _replay_outcome_fingerprint(outcomes[False]))


# ---------------------------------------------------------------------------
# Backend plumbing
# ---------------------------------------------------------------------------


def test_create_backend_selects_engine():
    program = program_for("fibonacci", CASES[0][1])
    assert isinstance(create_backend(program), Interpreter)
    assert isinstance(
        create_backend(program, config=ExecutionConfig(backend="vm")),
        VirtualMachine)
    with pytest.raises(ValueError):
        create_backend(program, config=ExecutionConfig(backend="jit"))


def test_compiled_code_is_cached_per_program():
    from repro.vm.compiler import compile_program

    program = program_for("fibonacci", CASES[0][1])
    assert compile_program(program) is compile_program(program)


def test_call_stack_overflow_parity():
    """Unbounded guest recursion crashes identically on both backends.

    The guest depth limit is lowered so the tree-walker (which spends
    several host stack frames per guest call) stays within Python's own
    recursion limit.
    """

    source = "int spin(int n) { return spin(n + 1); }\nint main() { return spin(0); }"
    program = Program.from_source(source, name="overflow")
    fingerprints = {}
    for backend in BACKENDS:
        executor = create_backend(
            program,
            config=ExecutionConfig(max_call_depth=64, backend=backend))
        result = executor.run(["overflow"])
        fingerprints[backend] = result_fingerprint(result)
    assert fingerprints["vm"] == fingerprints["interp"]
    assert fingerprints["vm"]["crashed"]
    assert "call stack overflow" in fingerprints["vm"]["crash"][2]


def test_step_limit_parity():
    """Both backends convert the step budget into the same outcome."""

    source = "int main() { int i; for (i = 0; i >= 0; i = i + 1) {} return 0; }"
    program = Program.from_source(source, name="spin")
    outcomes = {}
    for backend in BACKENDS:
        executor = create_backend(
            program,
            config=ExecutionConfig(max_steps=5_000, backend=backend))
        result = executor.run(["spin"])
        outcomes[backend] = (result.step_limit_hit, result.exit_code)
        # The lumped charge of a bytecode instruction may overshoot the
        # budget by a couple of tree-walker steps, never more.
        assert 5_000 < result.steps <= 5_010
    assert outcomes["vm"] == outcomes["interp"] == (True, 124)
