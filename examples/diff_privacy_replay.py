"""Reconstruct a diff execution without ever seeing the user's files.

The diff workload is input-intensive: nearly every interesting branch depends
on the contents of the two files being compared.  This example records a diff
run over two private files and then shows the replay engine reconstructing an
equivalent pair of inputs purely from the branch bitvector — the developer
never receives the original file contents.

Run with:  python examples/diff_privacy_replay.py
"""

from repro import ConcolicBudget, InstrumentationMethod, Pipeline, ReplayBudget
from repro.service import InstrumentationSection, ReproConfig
from repro.workloads import diffutil


def main() -> None:
    config = ReproConfig(instrumentation=InstrumentationSection(
        concolic_budget=ConcolicBudget(max_iterations=4, max_seconds=8)))
    pipeline = Pipeline.from_source(diffutil.SOURCE, name="diff", config=config)

    # The "private" user files.
    user_env = diffutil.custom_scenario(b"alpha\nsecret\n", b"alpha\nsecres\n",
                                        name="private-diff")
    analysis = pipeline.analyze(diffutil.custom_scenario(b"x\n", b"y\n", name="diff-analysis"))

    plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, analysis)
    recording = pipeline.record(plan, user_env)
    print(f"user-site run: {recording.execution.branch_executions} branch executions, "
          f"{len(recording.bitvector)} logged bits, "
          f"{recording.storage_bytes()} bytes shipped")
    print("user output was:")
    print("    " + recording.execution.stdout.replace("\n", "\n    ").rstrip())

    report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=600, max_seconds=45))
    print("replay:", report.outcome.summary())
    if report.reproduced:
        inputs = report.outcome.found_input
        old = bytes(value for name, value in sorted(
            ((n, v) for n, v in inputs.items() if n.startswith("file__old.txt_")),
            key=lambda item: int(item[0].rsplit("_", 1)[1])))
        new = bytes(value for name, value in sorted(
            ((n, v) for n, v in inputs.items() if n.startswith("file__new.txt_")),
            key=lambda item: int(item[0].rsplit("_", 1)[1])))
        print(f"reconstructed old file bytes: {old!r}")
        print(f"reconstructed new file bytes: {new!r}")
        print("The reconstruction follows the recorded control flow; it is an input")
        print("equivalent to — but not a copy of — the user's private data.")


if __name__ == "__main__":
    main()
