"""Reproduce the paste delimiter bug from a partial branch log.

This mirrors the paper's §5.2 experiment: the user runs
``paste -d\\ abcdefghijklmnopqrstuvwxyz`` (a delimiter list ending in a
backslash) and the program crashes while unescaping the delimiters.  The
developer receives only the branch bitvector and the crash site, and uses the
replay engine to synthesise an argument vector that reaches the same crash.

Run with:  python examples/coreutils_bug_report.py
"""

from repro import InstrumentationMethod, Pipeline, ReplayBudget
from repro.workloads.coreutils import paste


def main() -> None:
    pipeline = Pipeline.from_source(paste.SOURCE, name="paste")
    bug_env = paste.bug_scenario()
    print(f"user command: {' '.join(bug_env.argv)}")

    # Pre-deployment: the developer analyses paste with a benign workload.
    analysis = pipeline.analyze(paste.benign_scenario())
    print("analysis:", analysis.summary())

    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, bug_env)
        report = pipeline.reproduce(recording,
                                    budget=ReplayBudget(max_runs=300, max_seconds=30))
        status = f"{report.replay_seconds:.2f}s in {report.runs} runs" \
            if report.reproduced else "NOT reproduced (budget exhausted)"
        print(f"{method.value:16s} instrumented={plan.instrumented_count():3d} "
              f"log={len(recording.bitvector):3d} bits  "
              f"cpu={recording.overhead.cpu_time_percent:6.1f}%  replay: {status}")
        if report.reproduced:
            delimiter_arg = report.outcome.found_input.get("arg1_2")
            if delimiter_arg is not None:
                print(f"{'':16s} -> replay discovered that argv[1][2] must be "
                      f"{chr(delimiter_arg)!r} (the trailing backslash)")


if __name__ == "__main__":
    main()
