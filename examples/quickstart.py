"""Quickstart: instrument a small program, record a crash, reproduce it.

This example walks through the paper's whole workflow on a toy program:

1. run the pre-deployment analyses (bounded concolic execution + static
   dataflow/points-to),
2. build an instrumentation plan with the combined (dynamic+static) method,
3. execute the instrumented program at the simulated user site with a
   bug-triggering argument, collecting the branch bitvector,
4. hand the bug report to the replay engine and let it find an input that
   reaches the same crash.

Run with:  python examples/quickstart.py
"""

from repro import InstrumentationMethod, Pipeline, ReplayBudget
from repro.environment import simple_environment

SOURCE = r"""
/* A tiny "option parser" with a crash hidden behind a specific argument. */

int handle(char *arg) {
    if (strlen(arg) < 4) {
        return 0;
    }
    if (arg[0] == 'b' && arg[1] == 'o' && arg[2] == 'o' && arg[3] == 'm') {
        crash("option handler exploded");
    }
    return 1;
}

int main(int argc, char **argv) {
    int i;
    int handled = 0;
    for (i = 1; i < argc; i = i + 1) {
        handled = handled + handle(argv[i]);
    }
    printf("handled %d options\n", handled);
    return 0;
}
"""


def main() -> None:
    pipeline = Pipeline.from_source(SOURCE, name="quickstart")

    # The scenario the (simulated) user runs: the second argument triggers the bug.
    environment = simple_environment(["demo", "safe", "boom!"], name="user-run")

    print("== 1. pre-deployment analysis")
    analysis = pipeline.analyze(environment)
    print("  ", analysis.summary())

    print("== 2. instrumentation plan (dynamic+static)")
    plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, analysis)
    print("  ", plan.describe())

    print("== 3. recording at the user site")
    recording = pipeline.record(plan, environment)
    print(f"   crashed={recording.crashed} at "
          f"{recording.crash_site.function}:{recording.crash_site.line}")
    print(f"   branch log: {len(recording.bitvector)} bits "
          f"({recording.storage_bytes()} bytes shipped to the developer)")
    print(f"   instrumentation CPU time: {recording.overhead.cpu_time_percent:.1f}% of baseline")

    print("== 4. bug reproduction at the developer site")
    report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=200, max_seconds=20))
    print("  ", report.outcome.summary())
    if report.reproduced:
        recovered = bytes(report.outcome.found_input[f"arg2_{i}"]
                          for i in range(4)).decode()
        print(f"   recovered the first bytes of the offending argument: {recovered!r}")
        print("   (note: the developer never saw the user's actual input)")


if __name__ == "__main__":
    main()
