"""Explore the instrumentation-overhead vs debugging-time tradeoff on a server.

This is the paper's uServer experiment in miniature: an event-driven HTTP
server is instrumented with each of the four methods, driven with a scripted
client workload, crashed after the workload completes, and then reproduced at
the developer site from the partial branch log.  The printout shows the
tradeoff the paper is about: the combined (dynamic+static) method keeps the
recording overhead close to the dynamic method while reproducing the execution
almost as fast as full static instrumentation.

Run with:  python examples/webserver_debugging.py
"""

from repro import (
    ConcolicBudget,
    InstrumentationMethod,
    Pipeline,
    ReplayBudget,
)
from repro.service import InstrumentationSection, ReproConfig
from repro.workloads import userver


def main() -> None:
    config = ReproConfig(instrumentation=InstrumentationSection(
        library_functions=set(userver.LIBRARY_FUNCTIONS)))
    pipeline = Pipeline.from_source(userver.SOURCE, name="userver", config=config)

    # Pre-deployment analysis uses a plain GET workload (what a developer's
    # test suite would exercise) with a bounded exploration budget.
    analysis_env = userver.saturation_workload(3)
    analysis = pipeline.analyze(analysis_env,
                                ConcolicBudget(max_iterations=12, max_seconds=15, label="HC"))
    print("analysis:", analysis.summary())

    # The field scenario: a POST request plus a GET, followed by an
    # externally-delivered crash (the paper's SEGFAULT methodology).
    field_env = userver.experiment(4)
    print(f"field workload: {field_env.name}")
    print(f"{'method':18s} {'branches':>8s} {'log bits':>8s} {'cpu %':>7s} "
          f"{'storage B':>9s}   replay")

    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, field_env)
        report = pipeline.reproduce(recording,
                                    budget=ReplayBudget(max_runs=400, max_seconds=30))
        replay = (f"{report.replay_seconds:.1f}s / {report.runs} runs"
                  if report.reproduced else "TIMEOUT")
        print(f"{method.value:18s} {plan.instrumented_count():8d} "
              f"{len(recording.bitvector):8d} "
              f"{recording.overhead.cpu_time_percent:7.1f} "
              f"{recording.storage_bytes():9d}   {replay}")

    print("\nLower 'cpu %' means cheaper recording at the user site;")
    print("a fast, non-TIMEOUT replay means cheaper debugging at the developer site.")
    print("dynamic+static is the configuration that does well on both axes.")


if __name__ == "__main__":
    main()
