"""Serve a batch of duplicated bug reports through the trace inbox.

The fleet-scale version of the user/developer split: several (simulated)
user machines ship bug reports into a spool directory; the developer-side
:class:`~repro.service.service.ReproService` ingests them, deduplicates by
``(plan fingerprint, crash site)``, runs **one** replay search per distinct
bug, and fans every reproduction report back out to all duplicates.

Run with:  python examples/service_inbox.py
"""

import os
import shutil
import tempfile

from repro import InstrumentationMethod, ReplayBudget
from repro.service import ReproConfig, ReproService, workload_pipeline


def ship_bug_reports(spool: str, config: ReproConfig) -> None:
    """Simulate users hitting two distinct bugs, with duplicates."""

    shipments = [("mkdir-bug", 3), ("paste-bug", 2)]  # (bug, user count)
    user = 0
    for workload, users in shipments:
        pipeline, environment = workload_pipeline(workload, config=config)
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        first = os.path.join(spool, f"user{user}.trace")
        pipeline.record_trace(plan, environment, first)  # privacy scaffold
        user += 1
        for _ in range(users - 1):
            shutil.copyfile(first, os.path.join(spool, f"user{user}.trace"))
            user += 1


def main() -> None:
    config = ReproConfig()
    config.execution.backend = "vm"
    config.replay.budget = ReplayBudget(max_runs=2000, max_seconds=60)

    workdir = tempfile.mkdtemp(prefix="repro-service-example-")
    spool = os.path.join(workdir, "spool")
    os.makedirs(spool)
    ship_bug_reports(spool, config)
    print(f"spool holds {len(os.listdir(spool))} shipped bug reports")

    with ReproService(os.path.join(workdir, "inbox"), config=config) as service:
        for result in service.poll_spool(spool):
            tag = "duplicate of known bug" if result.duplicate else "new bug"
            print(f"  {result.trace_id}: {result.program} "
                  f"crash={result.crash_site} -> {tag}")
        reports = service.process()
        print("\nreproduction reports (one search per bug, fanned out):")
        for trace_id in sorted(reports):
            report = reports[trace_id]
            via = f" (search shared via {report.duplicate_of})" \
                if report.duplicate_of else ""
            print(f"  {trace_id}: reproduced={report.reproduced} "
                  f"runs={report.runs}{via}")
        stats = service.stats()
        print(f"\n{stats.traces_ingested} traces, {stats.searches_run} searches "
              f"-> dedup ratio {stats.dedup_ratio:.2f}x")

    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
