"""Developer smoke test for the substrate (not part of the test suite)."""

from repro.lang.program import Program
from repro.interp.interpreter import ExecutionConfig, Interpreter
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.tracer import TraceRecorder
from repro.osmodel.kernel import Kernel, KernelConfig

SOURCE = r"""
int fibonacci(int n) {
    if (n <= 1) {
        return n;
    }
    return fibonacci(n - 1) + fibonacci(n - 2);
}

int main(int argc, char **argv) {
    char option = read_option();
    int result = 0;
    if (option == 'a') {
        result = fibonacci(10);
    } else if (option == 'b') {
        result = fibonacci(12);
    }
    printf("Result: %d\n", result);
    return 0;
}
"""


def main() -> None:
    program = Program.from_source(SOURCE, name="fib")
    print("branches:", [b.short() for b in program.branch_locations])

    kernel = Kernel(config=KernelConfig(stdin_data=b"b"))
    recorder = TraceRecorder()
    interp = Interpreter(program, kernel=kernel, hooks=recorder,
                         binder=InputBinder(mode=ExecutionMode.ANALYZE),
                         config=ExecutionConfig(mode=ExecutionMode.ANALYZE))
    result = interp.run(["fib"])
    print("exit:", result.exit_code, "steps:", result.steps,
          "branches:", result.branch_executions,
          "symbolic:", result.symbolic_branch_executions)
    print("stdout:", result.stdout.strip())
    print("symbolic locations:", [b.short() for b in recorder.symbolic_locations()])
    print("bound inputs:", interp.binder.assignment())


if __name__ == "__main__":
    main()
