"""Developer smoke test for the execution substrate (not part of the suite).

Runs the same program on both execution backends — the tree-walking
interpreter and the bytecode VM — and checks they agree on every observable
(exit code, steps, branch events, symbolic locations, bound inputs, stdout).
"""

from repro.lang.program import Program
from repro.interp.backend import BACKENDS, create_backend
from repro.interp.interpreter import ExecutionConfig
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.tracer import TraceRecorder
from repro.osmodel.kernel import Kernel, KernelConfig

SOURCE = r"""
int fibonacci(int n) {
    if (n <= 1) {
        return n;
    }
    return fibonacci(n - 1) + fibonacci(n - 2);
}

int main(int argc, char **argv) {
    char option = read_option();
    int result = 0;
    if (option == 'a') {
        result = fibonacci(10);
    } else if (option == 'b') {
        result = fibonacci(12);
    }
    printf("Result: %d\n", result);
    return 0;
}
"""


def run_one(program: Program, backend: str) -> dict:
    kernel = Kernel(config=KernelConfig(stdin_data=b"b"))
    recorder = TraceRecorder()
    executor = create_backend(program, kernel=kernel, hooks=recorder,
                              binder=InputBinder(mode=ExecutionMode.ANALYZE),
                              config=ExecutionConfig(mode=ExecutionMode.ANALYZE,
                                                     backend=backend))
    result = executor.run(["fib"])
    print(f"[{backend}] exit:", result.exit_code, "steps:", result.steps,
          "branches:", result.branch_executions,
          "symbolic:", result.symbolic_branch_executions)
    print(f"[{backend}] stdout:", result.stdout.strip())
    print(f"[{backend}] symbolic locations:",
          [b.short() for b in recorder.symbolic_locations()])
    print(f"[{backend}] bound inputs:", executor.binder.assignment())
    return {
        "exit": result.exit_code,
        "steps": result.steps,
        "branches": result.branch_executions,
        "stdout": result.stdout,
        "events": [(e.location, e.taken, e.symbolic, str(e.condition))
                   for e in recorder.events],
        "inputs": executor.binder.assignment(),
    }


def main() -> None:
    program = Program.from_source(SOURCE, name="fib")
    print("branches:", [b.short() for b in program.branch_locations])
    observations = {backend: run_one(program, backend) for backend in BACKENDS}
    reference = observations[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        assert observations[backend] == reference, (
            f"backend {backend!r} diverged from {BACKENDS[0]!r}")
    print("backends agree:", " == ".join(BACKENDS))


if __name__ == "__main__":
    main()
