#!/usr/bin/env python
"""Disassemble the bytecode the VM would run for a workload.

The debugging aid for the register-allocation and plan-specialization
layers: dump every compiled code object — opcode names, slot numbers with
their source names, branch targets and whether each branch compiled as
``BRANCH_LOGGED`` (instrumented: inline bitvector append/compare) or
``BRANCH_BARE`` (hook-free) under the selected instrumentation plan::

    PYTHONPATH=src python scripts/disasm_tool.py --workload microbench
    PYTHONPATH=src python scripts/disasm_tool.py --workload diff-exp1 \
        --method "all branches" --function main
    PYTHONPATH=src python scripts/disasm_tool.py --workload userver-exp1 \
        --no-regalloc --summary

``--method none`` (the default compiles unspecialized code) selects the
plan; ``--no-regalloc`` shows the named-cell code the pre-slot VM ran;
``--no-specialize`` turns off the adaptive-specialization tiers (no
unboxed ``BINOP_II*`` forms, no warm-up triggers, no synthesized
superinstructions — the generic slot stream); ``--quickened`` runs the
workload once first and disassembles the stream the warmed-up VM is
actually executing (runtime-quickened sites rewritten in place, deopted
sites back in generic form); ``--summary`` prints per-function frame
layouts and opcode counts instead of full listings.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.instrument.methods import InstrumentationMethod  # noqa: E402
from repro.lang.resolve import resolve_program  # noqa: E402
from repro.service import workload_pipeline  # noqa: E402
from repro.vm import synth  # noqa: E402
from repro.vm.code import CompiledProgram  # noqa: E402
from repro.vm.compiler import compile_program  # noqa: E402
from repro.vm.opcodes import OPCODE_NAMES  # noqa: E402
from repro.workloads import workload_registry  # noqa: E402


def warm_up(program, plan, environment, regalloc: bool, specialize: bool):
    """Run the workload once on the VM; returns ``(machine, result)``.

    The machine's compiled stream is what the run left behind — warm-up
    triggers that fired have been rewritten to their quickened forms in
    place, so disassembling ``machine.compiled`` shows the adaptive state,
    not the static compile.
    """

    from repro.instrument.logger import BranchLogger
    from repro.interp.inputs import ExecutionMode, InputBinder
    from repro.interp.interpreter import ExecutionConfig
    from repro.interp.tracer import NullHooks
    from repro.vm.machine import VirtualMachine

    hooks = BranchLogger(plan) if plan is not None else NullHooks()
    vm = VirtualMachine(
        program, kernel=environment.make_kernel(), hooks=hooks,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend="vm",
                               register_allocation=regalloc,
                               specialize_ints=specialize,
                               synth_superinstructions=specialize))
    result = vm.run(environment.argv)
    return vm, result


def summarize(compiled: CompiledProgram) -> str:
    lines = []
    codes = list(compiled.functions.values())
    if compiled.globals_code is not None and compiled.globals_code.instructions:
        codes.insert(0, compiled.globals_code)
    for code in codes:
        ops = Counter(OPCODE_NAMES.get(instr[0], str(instr[0]))
                      for instr in code.instructions)
        layout = ", ".join(f"{i}:{name}"
                           for i, name in enumerate(code.slot_names)) or "-"
        lines.append(f"{code.name}: {len(code.instructions)} instructions, "
                     f"nlocals={code.nlocals} [{layout}]")
        lines.append("  " + ", ".join(f"{name}x{count}"
                                      for name, count in ops.most_common()))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", required=True,
                        help="a name from `trace_tool.py list`")
    parser.add_argument("--method", default=None,
                        choices=[m.value for m in InstrumentationMethod],
                        help="plan-specialize for this instrumentation method "
                             "(omit for unspecialized code)")
    parser.add_argument("--function", default=None,
                        help="disassemble only this function")
    parser.add_argument("--no-regalloc", action="store_true",
                        help="compile without register allocation "
                             "(every local on the named-cell path)")
    parser.add_argument("--no-specialize", action="store_true",
                        help="compile without the adaptive-specialization "
                             "tiers (generic boxed slot code, no synthesized "
                             "superinstructions)")
    parser.add_argument("--quickened", action="store_true",
                        help="run the workload once and disassemble the "
                             "warmed-up stream (runtime quickening applied "
                             "in place)")
    parser.add_argument("--summary", action="store_true",
                        help="frame layouts and opcode histograms only")
    args = parser.parse_args(argv)

    table = workload_registry()
    if args.workload not in table:
        print(f"unknown workload {args.workload!r}; choose one of: "
              f"{', '.join(sorted(table))}", file=sys.stderr)
        return 2
    pipeline, environment = workload_pipeline(args.workload)
    program = pipeline.program

    plan = None
    if args.method is not None:
        plan = pipeline.make_plan(InstrumentationMethod(args.method),
                                  environment=environment)
    specialize = not (args.no_specialize or args.no_regalloc)
    quicken_line = None
    if args.quickened:
        # Disassemble what the warmed-up VM actually runs: execute the
        # workload once and dump the machine's own (in-place rewritten)
        # stream, so warm-up triggers show as their quickened forms and any
        # guard-violating site shows back in generic form.
        vm, result = warm_up(program, plan, environment,
                             regalloc=not args.no_regalloc,
                             specialize=specialize)
        compiled = vm.compiled
        quicken_line = (f"quickened after one run ({result.steps} steps): "
                        f"{vm._quicken_hits} sites rewritten, "
                        f"{vm._quicken_misses} stayed generic, "
                        f"{vm._quicken_deopts} deoptimized")
    else:
        compiled = compile_program(
            program, plan, resolve=not args.no_regalloc,
            specialize_ints=specialize,
            synth_fusions=synth.DEFAULT_FUSIONS if specialize else None)

    resolution = None if args.no_regalloc else resolve_program(program)
    header = [f"workload {args.workload}: {len(compiled.functions)} functions, "
              f"{compiled.instruction_count()} instructions"]
    header.append(f"plan: {args.method or 'none (unspecialized)'}; "
                  f"logged branch slots: {len(compiled.logged_locations)}")
    header.append("adaptive specialization: "
                  + ("on (unboxed int slots, warm-up triggers, synthesized "
                     "superinstructions)" if specialize else "off"))
    if quicken_line is not None:
        header.append(quicken_line)
    if resolution is not None:
        stats = resolution.stats()
        header.append(
            f"register allocation v{compiled.resolver_version}: "
            f"{stats['slots']} slots, {stats['slot_accesses']} slot accesses, "
            f"{stats['global_accesses']} global accesses, "
            f"{stats['named_accesses']} named-cell accesses, "
            f"{stats['fully_slotted_functions']} fully slotted functions")
    else:
        header.append("register allocation: disabled (named cells only)")
    print("\n".join(header))
    print()

    if args.function is not None:
        code = compiled.functions.get(args.function)
        if code is None:
            print(f"no function {args.function!r} in this workload",
                  file=sys.stderr)
            return 2
        print(summarize(compiled) if args.summary else code.dis())
        return 0
    print(summarize(compiled) if args.summary else compiled.dis())
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into `head`/`grep -q` that closed early: the
        # consumer got what it wanted, not an error on our side.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
