"""Developer smoke test for the full pipeline (not part of the test suite)."""

from repro import InstrumentationMethod, Pipeline, ReplayBudget
from repro.environment import simple_environment

SOURCE = r"""
int check(char *arg) {
    int n = strlen(arg);
    if (n > 3) {
        if (arg[0] == 'c') {
            if (arg[1] == 'r') {
                if (arg[2] == 'a') {
                    crash("boom");
                }
            }
        }
    }
    return 0;
}

int main(int argc, char **argv) {
    int i;
    for (i = 1; i < argc; i = i + 1) {
        check(argv[i]);
    }
    return 0;
}
"""


def main() -> None:
    pipeline = Pipeline.from_source(SOURCE, name="smoke")
    env = simple_environment(["smoke", "crash"], name="crash-scenario")

    analysis = pipeline.analyze(env)
    print(analysis.summary())

    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, env)
        print(f"[{method.value}] plan={plan.instrumented_count()} branches, "
              f"bits={len(recording.bitvector)}, crashed={recording.crashed}, "
              f"cpu={recording.overhead.cpu_time_percent:.1f}%")
        report = pipeline.reproduce(recording, budget=ReplayBudget(max_runs=200, max_seconds=20))
        print("   replay:", report.describe())


if __name__ == "__main__":
    main()
