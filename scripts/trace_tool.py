#!/usr/bin/env python
"""Record a workload crash to a trace file, or reproduce one from a file.

This is the command-line face of the paper's user/developer split: ``record``
plays the user machine (instrument, run, crash, write the compact bug report)
and ``replay`` plays the developer machine (load the bug report, check the
matched-binaries fingerprint, run the guided search).  The two halves are
designed to run in *different processes* — the end-to-end test drives them as
separate interpreter invocations::

    PYTHONPATH=src python scripts/trace_tool.py record \
        --workload diff-exp1 --out /tmp/diff.trace
    PYTHONPATH=src python scripts/trace_tool.py replay \
        --trace /tmp/diff.trace --workload diff-exp1 --workers 4 \
        --worker-kind process

Exit codes: 0 success (replay: crash reproduced), 1 replay search failed,
2 usage / trace-format / fingerprint errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    InstrumentationMethod,
    Pipeline,
    PipelineConfig,
    ReplayBudget,
    TraceError,
    load_trace,
)
from repro.workloads import all_cases, library_functions_for  # noqa: E402

#: Methods whose plans rebuild deterministically without any pre-deployment
#: analysis; for these ``replay`` re-derives the developer-side plan and
#: checks its fingerprint against the trace (the strict matched-binaries
#: check).  Analysis-based plans are still guarded by the program-level
#: branch-location check in ``ReplayEngine.from_trace``.
_ANALYSIS_FREE = {InstrumentationMethod.ALL_BRANCHES.value,
                  InstrumentationMethod.NONE.value}


def registry():
    """Workload name -> (source, environment, library functions)."""

    table = {}
    for name, source, environment in all_cases():
        table[name] = (source, environment, library_functions_for(source))
    return table


def make_pipeline(name, source, library, args):
    config = PipelineConfig(backend=args.backend,
                            library_functions=set(library))
    if hasattr(args, "workers"):
        config.replay_workers = args.workers
        config.replay_worker_kind = args.worker_kind
        config.replay_warm_start = not args.no_warm_start
    return Pipeline.from_source(source, name=name, config=config)


def cmd_list(_args) -> int:
    for name in sorted(registry()):
        print(name)
    return 0


def cmd_record(args) -> int:
    table = registry()
    if args.workload not in table:
        print(f"unknown workload {args.workload!r}; see `trace_tool.py list`",
              file=sys.stderr)
        return 2
    source, environment, library = table[args.workload]
    pipeline = make_pipeline(args.workload, source, library, args)
    method = InstrumentationMethod(args.method)
    plan = pipeline.make_plan(method, environment=environment)
    recording = pipeline.record_trace(plan, environment, args.out,
                                      scaffold=not args.keep_input_data)
    crash = recording.crash_site
    print(f"recorded {args.workload} -> {args.out}")
    print(f"  bits={len(recording.bitvector)} "
          f"syscall_results={recording.syscall_log.count()} "
          f"crash={crash.function + ':' + str(crash.line) if crash else 'none'}")
    return 0


def cmd_info(args) -> int:
    trace = load_trace(args.trace)
    print(json.dumps(trace.describe(), indent=2, sort_keys=True))
    return 0


def cmd_replay(args) -> int:
    table = registry()
    if args.workload not in table:
        print(f"unknown workload {args.workload!r}; see `trace_tool.py list`",
              file=sys.stderr)
        return 2
    source, _environment, library = table[args.workload]
    pipeline = make_pipeline(args.workload, source, library, args)
    trace = load_trace(args.trace)
    expect_plan = None
    if trace.plan.method in _ANALYSIS_FREE:
        expect_plan = pipeline.make_plan(InstrumentationMethod(trace.plan.method))
    budget = ReplayBudget(max_runs=args.max_runs, max_seconds=args.max_seconds)
    report = pipeline.reproduce_from_trace(trace, budget=budget,
                                           expect_plan=expect_plan)
    outcome = report.outcome
    print(f"replay of {args.trace} ({trace.scenario}, method={trace.plan.method}): "
          f"{outcome.summary()}")
    print(f"  stats={json.dumps(outcome.stats(), sort_keys=True)}")
    if outcome.reproduced:
        print(f"  crash={outcome.crash_site.function}:{outcome.crash_site.line}")
        shown = dict(sorted(outcome.found_input.items())[:12])
        print(f"  input ({len(outcome.found_input)} vars, first 12): {shown}")
    return 0 if outcome.reproduced else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list recordable workload scenarios")

    record = sub.add_parser("record", help="run a workload and write a trace file")
    record.add_argument("--workload", required=True)
    record.add_argument("--out", required=True)
    record.add_argument("--method", default=InstrumentationMethod.ALL_BRANCHES.value,
                        choices=[m.value for m in InstrumentationMethod])
    record.add_argument("--backend", default="vm", choices=["interp", "vm"])
    record.add_argument("--keep-input-data", action="store_true",
                        help="store real input bytes instead of the privacy scaffold")

    info = sub.add_parser("info", help="print a trace file's summary")
    info.add_argument("--trace", required=True)

    replay = sub.add_parser("replay", help="reproduce a crash from a trace file")
    replay.add_argument("--trace", required=True)
    replay.add_argument("--workload", required=True,
                        help="the developer's copy of the program")
    replay.add_argument("--backend", default="vm", choices=["interp", "vm"])
    replay.add_argument("--workers", type=int, default=1)
    replay.add_argument("--worker-kind", default="thread",
                        choices=["thread", "process"])
    replay.add_argument("--no-warm-start", action="store_true")
    replay.add_argument("--max-runs", type=int, default=3000)
    replay.add_argument("--max-seconds", type=float, default=120.0)

    args = parser.parse_args(argv)
    handler = {"list": cmd_list, "record": cmd_record,
               "info": cmd_info, "replay": cmd_replay}[args.command]
    try:
        return handler(args)
    except TraceError as exc:
        # Bad trace files and mismatched binaries are user-facing outcomes,
        # not tool bugs: report a one-line reason and a distinct exit code
        # instead of a traceback (TraceFormatError covers corruption and
        # version skew, TraceFingerprintMismatch unmatched binaries).
        reason = " ".join(str(exc).split())
        print(f"error: {type(exc).__name__}: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
