#!/usr/bin/env python
"""Record a workload crash to a trace file, or reproduce one from a file.

Thin wrapper over the packaged service CLI (:mod:`repro.service.cli`, also
reachable as ``python -m repro``), kept at this path for the documented
two-process workflow::

    PYTHONPATH=src python scripts/trace_tool.py record \
        --workload diff-exp1 --out /tmp/diff.trace
    PYTHONPATH=src python scripts/trace_tool.py replay \
        --trace /tmp/diff.trace --workload diff-exp1 --workers 4 \
        --worker-kind process

The fleet-scale half lives in the ``inbox`` and ``serve-batch`` subcommands
(batch ingestion + ``(fingerprint, crash site)`` dedup — see the README's
"Service API" section).

Exit codes: 0 success (replay: crash reproduced), 1 replay search failed,
2 usage / trace-format / fingerprint errors.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
