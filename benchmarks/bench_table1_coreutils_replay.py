"""Table 1: time needed to replay the crash bug in the four coreutils programs.

Paper shape: every configuration reproduces every bug within a couple of
seconds — the programs are small and both analyses are accurate on them.
"""

from repro.experiments import coreutils_exp, print_table
from benchmarks.conftest import run_once


def test_table1_coreutils_replay(benchmark):
    rows = run_once(benchmark, coreutils_exp.table1_rows)
    print_table(rows, "Table 1 - coreutils crash-bug replay time")
    assert {row["program"] for row in rows} == {"mkdir", "mkfifo", "mknod", "paste"}
    for row in rows:
        for method in ("dynamic", "dynamic+static", "static", "all branches"):
            assert row[method] != "TIMEOUT", f"{row['program']}/{method} timed out"
