"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
fixtures below are session-scoped so the (comparatively expensive) dynamic and
static analyses run once and are shared by every uServer / diff benchmark.

Scale: workload sizes and budgets are scaled down so the whole harness runs in
minutes on a laptop; see DESIGN.md §2 and EXPERIMENTS.md for the mapping to the
paper's setup.
"""

from __future__ import annotations

import pytest

from repro.experiments import diff_exp, userver_exp
from repro.replay.budget import ReplayBudget


@pytest.fixture(scope="session")
def userver_setup():
    """uServer pipeline plus LC and HC analyses (Table 2, Figure 4, Tables 3-8)."""

    return userver_exp.UServerSetup.create()


@pytest.fixture(scope="session")
def userver_replay_budget():
    return ReplayBudget(max_runs=600, max_seconds=25)


@pytest.fixture(scope="session")
def diff_setup():
    """Diff pipeline plus its (low-coverage) analysis."""

    return diff_exp.make_setup()


@pytest.fixture(scope="session")
def diff_replay_budget():
    return ReplayBudget(max_runs=700, max_seconds=25)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""

    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
