"""Table 7: symbolic branch locations/executions logged vs not logged (diff).

Paper shape: dynamic leaves a large number of symbolic branch executions
unlogged (millions in the paper, thousands here after scaling), which is why
it cannot reproduce the executions in Table 6; the other configurations leave
nothing unlogged.
"""

from repro.experiments import diff_exp, print_table
from benchmarks.conftest import run_once


def _count(cell: str, index: int) -> int:
    return int(cell.split("/")[index].strip())


def test_table7_diff_branch_logging(benchmark, diff_setup):
    pipeline, analysis = diff_setup
    rows = run_once(benchmark, diff_exp.table7_rows, pipeline, analysis)
    print_table(rows, "Table 7 - diff symbolic branches logged / not logged")
    for row in rows:
        unlogged_locations = _count(row["not logged (locations/executions)"], 0)
        unlogged_executions = _count(row["not logged (locations/executions)"], 1)
        if row["configuration"] in ("static", "all branches", "dynamic+static"):
            assert unlogged_locations == 0
        if row["configuration"] == "dynamic":
            # The low-coverage dynamic analysis misses content-dependent
            # branches, leaving many of their executions unlogged.
            assert unlogged_executions > 0
