"""Figure 4: uServer CPU time and storage per request for each configuration.

Paper shape: all-branches and static carry large overheads (static instruments
every library branch), while dynamic and dynamic+static stay cheap; storage per
request for the dynamic configurations is a few tens of bytes.
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def test_fig4_userver_overhead_and_storage(benchmark, userver_setup):
    rows = run_once(benchmark, userver_exp.figure4_rows, userver_setup, 10)
    print_table(rows, "Figure 4 - uServer CPU time and storage per request")
    by_config = {row["configuration"]: row for row in rows}
    dynamic = by_config["dynamic (hc)"]
    combined = by_config["dynamic+static (hc)"]
    static = by_config["static"]
    all_branches = by_config["all branches"]
    # CPU-time ordering.
    assert dynamic["cpu_time_percent"] < static["cpu_time_percent"]
    assert combined["cpu_time_percent"] < static["cpu_time_percent"]
    assert static["cpu_time_percent"] <= all_branches["cpu_time_percent"] + 1.0
    # The combined method saves a large fraction of the static overhead
    # (the paper reports 10-92% savings on the instrumentation component).
    static_overhead = static["cpu_time_percent"] - 100.0
    combined_overhead = combined["cpu_time_percent"] - 100.0
    assert combined_overhead <= 0.9 * static_overhead
    # Storage ordering.
    assert dynamic["storage_bytes_per_request"] <= static["storage_bytes_per_request"]
    assert combined["storage_bytes_per_request"] <= static["storage_bytes_per_request"]
