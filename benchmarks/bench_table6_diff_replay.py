"""Table 6: time needed to reproduce the two diff executions.

Paper shape: dynamic cannot finish within the time budget (its low-coverage
analysis leaves dozens of symbolic branch locations unlogged), while the three
other configurations reproduce the executions quickly.
"""

from repro.experiments import diff_exp, print_table
from benchmarks.conftest import run_once


def test_table6_diff_replay(benchmark, diff_setup, diff_replay_budget):
    pipeline, analysis = diff_setup
    rows = run_once(benchmark, diff_exp.table6_rows, pipeline, analysis,
                    replay_budget=diff_replay_budget)
    print_table(rows, "Table 6 - diff reproduction time")
    by_config = {row["configuration"]: row for row in rows}
    # The fully-instrumented configurations reproduce both executions with a
    # path-equivalent input (an actual time in the cell).
    for config in ("static", "all branches", "dynamic+static"):
        for exp in ("exp1", "exp2"):
            assert by_config[config][exp] not in ("TIMEOUT", "NOT-EQUIV"), (
                f"{config}/{exp}: {by_config[config][exp]}")
    # Dynamic cannot truly reproduce (the paper's infinity symbol) on at
    # least one of them: its search either exhausts the budget or proposes an
    # input that is not path-equivalent to the recorded execution.
    dynamic = by_config["dynamic"]
    assert (dynamic["exp1"] in ("TIMEOUT", "NOT-EQUIV")
            or dynamic["exp2"] in ("TIMEOUT", "NOT-EQUIV"))
