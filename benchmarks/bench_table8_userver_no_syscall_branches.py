"""Table 8: logged/unlogged symbolic branches without syscall-result logging.

Paper shape: compared with Table 4, turning off syscall logging does not change
which *branches* are logged (the plans are identical), but the replay now has
to discover syscall results through those branches — the table documents the
per-scenario symbolic branch volumes that drive Table 5's slowdowns.
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def test_table8_branch_split_without_syscall_logging(benchmark, userver_setup):
    rows = run_once(benchmark, userver_exp.table8_rows, userver_setup, scenarios=(1,))
    print_table(rows, "Table 8 - symbolic branches logged / not logged (no syscall log)")
    with_syscalls = userver_exp.table4_rows(userver_setup, scenarios=(1,))
    # The branch split is independent of syscall logging: same plans, same split.
    key = lambda row: (row["experiment"], row["configuration"])  # noqa: E731
    table4 = {key(row): row for row in with_syscalls}
    for row in rows:
        reference = table4[key(row)]
        assert row["logged (locations/executions)"] == reference["logged (locations/executions)"]
        assert (row["not logged (locations/executions)"]
                == reference["not logged (locations/executions)"])
