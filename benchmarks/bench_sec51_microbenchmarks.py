"""§5.1 microbenchmarks: the counting loop and Listing 1 (fibonacci).

Paper reference points: the all-branches overhead on the counting loop is
~107 % (17 instructions / ~3 ns per logged branch), and on the fibonacci
program every analysis-based method instruments only the two option branches,
making its overhead negligible.
"""

from repro.experiments import micro_exp, print_table
from benchmarks.conftest import run_once


def test_counter_loop_overhead(benchmark):
    rows = run_once(benchmark, micro_exp.counter_loop_rows, 5000)
    print_table(rows, "Sec 5.1 - counting-loop microbenchmark")
    all_branches = rows[1]
    assert all_branches["instrumented_branch_executions"] >= 5000
    # Same order of magnitude as the paper's 107% overhead.
    assert 150.0 <= all_branches["cpu_time_percent"] <= 260.0


def test_fibonacci_two_branches(benchmark):
    rows = run_once(benchmark, micro_exp.fibonacci_rows)
    print_table(rows, "Sec 5.1 - Listing 1 (fibonacci) microbenchmark")
    by_method = {row["configuration"]: row for row in rows}
    for method in ("dynamic", "dynamic+static", "static"):
        assert by_method[method]["instrumented_branch_locations"] == 2
        assert by_method[method]["logged_bits"] == 2
        # Two logged bits add no measurable overhead.
        assert by_method[method]["cpu_time_percent"] < 105.0
    assert by_method["all branches"]["cpu_time_percent"] > 110.0
