"""Replay-search shoot-out: the new search stack vs the PR 1 baseline.

Times the complete guided search (the paper's "replay time") on uServer and
diff crash scenarios under three configurations — the PR 1 stack (legacy
full-rescan constraint search, unspecialized VM, serial), the plan-specialized
serial stack, and the full parallel stack — asserting that all three explore
byte-identical search trees before comparing wall-clock.

Set ``BENCH_SMOKE=1`` to run the two-scenario smoke subset (CI).  The row set
is dumped to ``BENCH_replay.json`` so the perf trajectory is tracked
PR-over-PR.
"""

import os

from repro.experiments import print_table, replay_search_exp
from benchmarks.conftest import run_once

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def test_replay_search_speedup(benchmark):
    rows = run_once(benchmark, replay_search_exp.search_rows,
                    smoke=SMOKE, repeats=1 if SMOKE else 2)
    print_table(rows, "Replay search - plan-specialized parallel stack vs PR 1")
    artifact = replay_search_exp.write_artifact(rows)
    print(f"wrote {artifact}")

    by_key = {(row["scenario"], row["configuration"]): row for row in rows}
    scenarios = {row["scenario"] for row in rows}
    for scenario in scenarios:
        for config, _, _, _ in replay_search_exp.CONFIGURATIONS:
            row = by_key[(scenario, config)]
            # Every configuration reproduces the crash from an identical
            # explored search tree; only the wall-clock may differ.
            assert row["reproduced"], f"{scenario}/{config} did not reproduce"
            assert row["identical_to_pr1"], (
                f"{scenario}/{config} explored a different search tree")
        # The headline claim: the full new stack beats the PR 1 serial VM by
        # >= 1.5x on every uServer and diff scenario.
        speedup = by_key[(scenario, "pr2-parallel")]["speedup_vs_pr1"]
        assert speedup >= 1.5, (
            f"{scenario}: pr2-parallel only {speedup}x over pr1-serial")
