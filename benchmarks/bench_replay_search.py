"""Replay-search shoot-out: four PRs of search stack vs the PR 1 baseline.

Times the complete guided search (the paper's "replay time") on uServer, diff
and coreutils crash scenarios under five configurations — the PR 1 stack
(legacy full-rescan constraint search, unspecialized VM, serial), the
plan-specialized serial stack, the solver warm start, the register-allocated
VM frames (pr4), and the speculative worker pool on processes — asserting
that all five explore byte-identical search trees before comparing
wall-clock.

Set ``BENCH_SMOKE=1`` to run the two-scenario smoke subset (CI).  The row set
is dumped to ``BENCH_replay.json`` so the perf trajectory is tracked
PR-over-PR.

The process-pool speedup gate only arms on a multi-core machine (the paper's
user/developer split assumes a beefy developer box; on one or two cores the
pool's pickling overhead cannot be amortized) and can be disabled with
``BENCH_SKIP_PROCESS_GATE=1`` for noisy shared runners.
"""

import os

from repro.experiments import (checkpoint_exp, net_exp, print_table,
                               replay_search_exp, service_exp)
from benchmarks.conftest import run_once

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SKIP_PROCESS_GATE = os.environ.get("BENCH_SKIP_PROCESS_GATE", "") not in ("", "0")
#: Wall-clock below which a search is too short to measure pool scaling.
MULTI_SECOND = 1.0


def test_replay_search_speedup(benchmark):
    rows = run_once(benchmark, replay_search_exp.search_rows,
                    smoke=SMOKE, repeats=1 if SMOKE else 2)
    print_table(rows, "Replay search - register-allocated process pool vs PR 1-3")
    # The batch-inbox scenario: spool duplicated bug reports through the
    # service layer; its rows assert the dedup contract (D searches for D
    # clusters, fan-out, byte-identity vs single-shot) internally and record
    # traces/sec + dedup ratio into the artifact.
    inbox_rows = service_exp.inbox_rows(smoke=SMOKE)
    print_table(inbox_rows, "Batch inbox - dedup ratio and traces/sec")
    # Telemetry cost: same search with metrics/spans on, asserting an
    # identical explored tree and recording overhead + deterministic
    # snapshot into the artifact's `telemetry` key.
    telemetry = replay_search_exp.telemetry_rows(
        smoke=SMOKE, repeats=1 if SMOKE else 2)
    print(f"telemetry overhead on {telemetry['scenario']}: "
          f"{telemetry['overhead_ratio']}x "
          f"({telemetry['wall_seconds_off']}s off, "
          f"{telemetry['wall_seconds_on']}s on)")
    # The network ingestion layer: a concurrent client fleet shipping the
    # duplicate-heavy batch over TCP, clean and fault-injected; each row
    # asserts zero lost reports and byte-identity vs single-shot internally
    # and records sustained traces/sec + p99 ingest latency.
    net_rows = net_exp.net_rows(smoke=SMOKE)
    print_table(net_rows, "Upload server - fleet over TCP, clean vs faulty")
    # Fault-tolerance cost: the same search checkpointed at every commit
    # and preempted-then-resumed mid-search, each asserting byte-identity
    # internally before its overhead ratio enters the artifact.
    checkpoint = checkpoint_exp.checkpoint_rows(smoke=SMOKE,
                                                repeats=1 if SMOKE else 2)
    print(f"checkpoint overhead on {checkpoint['scenario']}: "
          f"{checkpoint['checkpoint_overhead_ratio']}x every-commit, "
          f"{checkpoint['resume_overhead_ratio']}x preempt+resume "
          f"({checkpoint['checkpoint_writes']} snapshots)")
    artifact = replay_search_exp.write_artifact(rows, inbox_rows=inbox_rows,
                                                telemetry=telemetry,
                                                net=net_rows,
                                                checkpoint=checkpoint)
    print(f"wrote {artifact}")
    assert telemetry["identical_tree"]
    assert telemetry["snapshot"]["counters"]["replay.runs"] == telemetry["runs"]
    assert checkpoint["identical_tree"]
    assert checkpoint["checkpoint_writes"] == checkpoint["commits"] > 0
    for row in net_rows:
        assert row["lost_reports"] == 0, f"{row['scenario']} lost reports"
        assert row["acked"] == row["uploads"], f"{row['scenario']} lost acks"
        assert row["traces_per_sec"] is not None
    faulty = [r for r in net_rows if r["faults"] is not None]
    assert faulty, "no fault-injected scenario ran"
    assert all(r["poison_rejected"] > 0 for r in faulty), (
        "the rejection ledger absorbed no poison uploads")
    for row in inbox_rows:
        assert row["reproduced"], f"{row['scenario']}: a cluster failed"
        assert row["searches_run"] == row["clusters"]
        ratio = row["dedup_ratio"]
        assert ratio is not None and ratio > 1.0, "batch carried no duplicates"

    by_key = {(row["scenario"], row["configuration"]): row for row in rows}
    scenarios = {row["scenario"] for row in rows}
    for scenario in scenarios:
        for config in (c[0] for c in replay_search_exp.CONFIGURATIONS):
            row = by_key[(scenario, config)]
            # Every configuration reproduces the crash from an identical
            # explored search tree; only the wall-clock (and the solver-call
            # count, which the warm start deliberately shrinks) may differ.
            assert row["reproduced"], f"{scenario}/{config} did not reproduce"
            assert row["identical_to_pr1"], (
                f"{scenario}/{config} explored a different search tree")
        # The serial-stack claim: specialization + incremental search + warm
        # start beat the PR 1 serial VM by >= 1.5x on every scenario.
        speedup = by_key[(scenario, "pr3-serial")]["speedup_vs_pr1"]
        assert speedup >= 1.5, (
            f"{scenario}: pr3-serial only {speedup}x over pr1-serial")
        # Register allocation must not regress the serial search.  Its
        # wall-clock win varies with how run-bound vs solver-bound the
        # scenario is (measured 1.0-1.6x run-bound, ~1.0x solver-bound), so
        # the hard >= 1.3x instructions/sec gate lives in the controlled
        # bench_backends.py comparison; here the bound only catches real
        # regressions through the shared-runner noise the interleaved
        # process-pool configurations add, and the artifact records the
        # exact ratio per scenario.
        regalloc = by_key[(scenario, "pr4-serial")]["regalloc_speedup_vs_pr3"]
        assert regalloc >= 0.75, (
            f"{scenario}: register allocation slowed the search ({regalloc}x)")
        # The warm start must actually save solver calls somewhere real.
        saved = by_key[(scenario, "pr3-serial")]["solver_calls_saved_vs_pr1"]
        assert saved >= 0, f"{scenario}: warm start added solver calls"

    total_saved = sum(by_key[(s, "pr3-serial")]["solver_calls_saved_vs_pr1"]
                      for s in scenarios)
    assert total_saved > 0, "warm start saved no solver calls on any scenario"

    # The multi-core claim: on a machine with enough cores, the process pool
    # beats the *same* serial stack >= 1.5x on at least one multi-second
    # search.  (Identity was already asserted above, so this is pure
    # scheduling gain.)
    cores = os.cpu_count() or 1
    if not SMOKE and not SKIP_PROCESS_GATE and cores >= 4:
        candidates = [s for s in scenarios
                      if by_key[(s, "pr4-serial")]["wall_seconds"] >= MULTI_SECOND]
        assert candidates, "no multi-second serial search to measure scaling on"
        best = max(by_key[(s, "pr4-process")]["speedup_vs_serial"]
                   for s in candidates)
        assert best >= 1.5, (
            f"process pool only {best}x over pr4-serial on {cores} cores "
            f"(candidates: {candidates})")
