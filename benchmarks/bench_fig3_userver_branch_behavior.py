"""Figure 3: per-branch-location execution counts for the uServer.

Paper shape: roughly 10 % of branch *executions* are symbolic, the symbolic
executions are concentrated in a small set of (application parser) locations,
and the majority of branch executions happen in the library code while only a
minority of the symbolic ones do.
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def test_fig3_userver_branch_behavior(benchmark):
    rows = run_once(benchmark, userver_exp.figure3_rows, 10)
    print_table(rows, "Figure 3 - uServer branch executions per location")
    summary = userver_exp.figure3_summary(rows)
    print_table([summary], "Figure 3 - aggregate shares")
    # A small minority of executions are symbolic.
    assert summary["symbolic_fraction"] < 0.35
    # Most branch executions happen in the library.
    assert summary["library_fraction"] > 0.5
    # (Divergence from the paper noted in EXPERIMENTS.md: because this server
    # delegates all byte scanning to the lib_* helpers, the library's share of
    # *symbolic* executions is higher here than the paper's 28%.)
    assert summary["symbolic_locations"] >= 10
