"""Closed-loop adaptive planning bench (``repro.planner``).

Runs the fleet-history experiment: for each workload, four generations of
record -> ship -> reproduce -> replan, recording the measured instrumentation
overhead of every generation.  Gates: reproduction holds in every generation
(100% rate), overhead falls strictly across >= 3 replans, and the whole
history replayed twice from scratch yields byte-identical plan ledgers
(replanning is deterministic in history + seed).  The per-generation summary
is merged into ``BENCH_replay.json`` under the ``planner`` key.

Set ``BENCH_SMOKE=1`` to run the single-workload smoke subset (CI).
"""

import os

from repro.experiments import planner_exp, print_table
from benchmarks.conftest import run_once

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def test_replanning_cuts_overhead_keeps_reproduction(benchmark):
    rows = run_once(benchmark, planner_exp.planner_rows, smoke=SMOKE)
    print_table(rows, "Adaptive planning - overhead per replan generation")
    # planner_rows already asserted the loop properties (strict overhead
    # decrease, 100% reproduction, deterministic ledger); re-derive the
    # headline numbers here so a regression fails with readable context.
    summary = planner_exp.planner_summary(rows)
    assert summary["workloads"], "no planner generations recorded"
    for workload, entry in summary["workloads"].items():
        assert entry["replans"] >= 3, (workload, entry["replans"])
        assert entry["reproduction_rate"] == 1.0, workload
        assert entry["overhead_last_percent"] < entry["overhead_first_percent"], (
            f"{workload}: replanning did not reduce overhead "
            f"({entry['overhead_first_percent']}% -> "
            f"{entry['overhead_last_percent']}%)")
        # The measured win on the reproduced workloads is ~24-41%; the gate
        # only guards against the loop silently stalling out.
        assert entry["overhead_reduction_percent"] >= 10.0, (
            f"{workload}: only {entry['overhead_reduction_percent']}% "
            f"overhead reduction across {entry['replans']} replans")
    artifact = planner_exp.merge_planner_artifact(summary)
    print(f"merged planner block into {artifact}")
