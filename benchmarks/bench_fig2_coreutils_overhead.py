"""Figure 2: CPU time of mkdir under the four instrumentation configurations.

Paper shape: dynamic, dynamic+static and static are nearly identical (the
analyses are accurate on these small programs); all-branches is the slowest.
"""

from repro.experiments import coreutils_exp, print_table
from benchmarks.conftest import run_once


def test_fig2_mkdir_overhead(benchmark):
    rows = run_once(benchmark, coreutils_exp.figure2_rows, "mkdir")
    print_table(rows, "Figure 2 - mkdir CPU time (normalised to none = 100%)")
    cpu = {row["configuration"]: row["cpu_time_percent"] for row in rows}
    assert cpu["dynamic"] <= cpu["all branches"]
    assert cpu["dynamic+static"] <= cpu["all branches"]
    assert cpu["static"] <= cpu["all branches"]
    # The three analysis-based configurations are close to each other.
    analysis_values = [cpu["dynamic"], cpu["dynamic+static"], cpu["static"]]
    assert max(analysis_values) - min(analysis_values) <= 60.0
