"""Table 5: uServer reproduction time *without* syscall-result logging.

Paper shape: every configuration takes longer than in Table 3 because the
replay engine must search for the results of ``select``/``recv``; the
configurations that also miss branch logs (dynamic) are penalised the most.
"""

from repro.experiments import print_table, userver_exp
from repro.replay.budget import ReplayBudget
from benchmarks.conftest import run_once


def test_table5_no_syscall_logging(benchmark, userver_setup):
    budget = ReplayBudget(max_runs=400, max_seconds=15)
    rows = run_once(benchmark, userver_exp.table5_rows, userver_setup,
                    scenarios=(1,), replay_budget=budget)
    print_table(rows, "Table 5 - uServer reproduction time without syscall logging")
    by_config = {row["configuration"]: row for row in rows}
    cells = [key for key in by_config["static"] if key != "configuration"]
    # The fully-logged configurations still reproduce scenario 1.
    for config in ("static", "all branches", "dynamic+static"):
        assert any(by_config[config][cell] != "TIMEOUT" for cell in cells)


def test_table5_syscall_logging_helps(benchmark, userver_setup, userver_replay_budget):
    """The paper's headline point: with syscall logging the same scenario is
    reproduced at least as fast as without it (usually much faster)."""

    def run_pair():
        with_log = userver_exp.table3_rows(userver_setup, scenarios=(1,),
                                           replay_budget=userver_replay_budget,
                                           log_syscalls=True)
        without_log = userver_exp.table3_rows(userver_setup, scenarios=(1,),
                                              replay_budget=userver_replay_budget,
                                              log_syscalls=False)
        return with_log, without_log

    with_log, without_log = run_once(benchmark, run_pair)
    print_table(with_log, "Table 3 subset - with syscall logging")
    print_table(without_log, "Table 5 subset - without syscall logging")

    def seconds(cell: str) -> float:
        return float("inf") if cell == "TIMEOUT" else float(cell.rstrip("s"))

    for config_with, config_without in zip(with_log, without_log):
        for key in config_with:
            if key == "configuration":
                continue
            assert seconds(config_with[key]) <= seconds(config_without[key]) + 2.0
