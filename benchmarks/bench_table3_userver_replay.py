"""Table 3: uServer bug-reproduction time per input scenario and coverage.

Paper shape: all-branches and static reproduce fastest; dynamic+static is only
slightly slower despite much lower instrumentation overhead; dynamic is the
worst and fails (times out) on scenarios that hit parser areas its analysis
never covered.
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def test_table3_userver_replay_times(benchmark, userver_setup, userver_replay_budget):
    rows = run_once(benchmark, userver_exp.table3_rows, userver_setup,
                    scenarios=(1, 4), replay_budget=userver_replay_budget)
    print_table(rows, "Table 3 - uServer bug reproduction time")
    by_config = {row["configuration"]: row for row in rows}
    cells = [key for key in by_config["static"] if key != "configuration"]
    # Static and all-branches never time out.
    for config in ("static", "all branches"):
        assert all(by_config[config][cell] != "TIMEOUT" for cell in cells)
    # The combined method reproduces every scenario too.
    assert all(by_config["dynamic+static"][cell] != "TIMEOUT" for cell in cells)
    # Dynamic does no better than the combined method anywhere, and it is the
    # only configuration allowed to time out.
    timeouts = sum(1 for cell in cells if by_config["dynamic"][cell] == "TIMEOUT")
    assert timeouts >= 0  # informational; the strict check is the two above
