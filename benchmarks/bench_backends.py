"""Backend shoot-out: bytecode VM vs tree-walking interpreter.

Raw instructions/sec (steps are charged in identical tree-walker units on
every substrate, so the comparison is substrate-only) on fibonacci, the §5.1
counting loop, and the uServer request loop — with no instrumentation and
under full branch logging.  Five substrates per cell: the interpreter, the
named-cell VM (``vm-base``: register allocation disabled, i.e. the PR 3 VM),
the slot VM without the compare-and-branch fusion (``vm-nocmp``), the slot
VM with the adaptive-specialization tiers disabled (``vm-nospec``: the PR 5
VM) and the full VM.  Gates: the slot-frame refactor at >= 1.3x over
``vm-base`` and the specialization tiers (unboxed int slots + quickening +
synthesized superinstructions) at >= 1.2x over ``vm-nospec`` on every
workload.  The measured specialize block (on/off rows per workload) is
merged into ``BENCH_replay.json`` under the ``specialize`` key.

Set ``BENCH_SMOKE=1`` for the shrunken CI smoke sizes.
"""

import os

from repro.experiments import backend_exp, print_table
from benchmarks.conftest import run_once

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def _by_key(rows):
    return {(row["workload"], row["configuration"], row["backend"]): row
            for row in rows}


def test_vm_beats_interpreter(benchmark):
    rows = run_once(benchmark, backend_exp.backend_rows,
                    repeats=1 if SMOKE else 3, smoke=SMOKE)
    print_table(rows, "Backend comparison - VM vs tree-walking interpreter")
    indexed = _by_key(rows)
    for workload in ("fibonacci", "microbench", "userver"):
        for configuration in ("none", "all branches"):
            interp = indexed[(workload, configuration, "interp")]
            vm = indexed[(workload, configuration, "vm")]
            vm_base = indexed[(workload, configuration, "vm-base")]
            vm_nocmp = indexed[(workload, configuration, "vm-nocmp")]
            vm_nospec = indexed[(workload, configuration, "vm-nospec")]
            # Identical work in tree-walker step units (deterministic, so
            # asserted in smoke mode too)...
            assert (vm["steps"] == interp["steps"] == vm_base["steps"]
                    == vm_nocmp["steps"] == vm_nospec["steps"])
            assert (vm["branch_executions"] == interp["branch_executions"]
                    == vm_base["branch_executions"]
                    == vm_nocmp["branch_executions"]
                    == vm_nospec["branch_executions"])
            if SMOKE:
                # Single-repeat shrunken-size timings are too noisy for
                # wall-clock gates on shared runners; the smoke job only
                # checks the work-equality invariants above and prints the
                # table for eyeballing.
                continue
            # ...delivered faster by the bytecode dispatch loop.
            assert vm["instructions_per_sec"] > interp["instructions_per_sec"], (
                f"VM slower than interpreter on {workload}/{configuration}")
            # The register-allocation gate: slot frames + flattened calls +
            # inline slot superinstructions must beat the named-cell VM by a
            # clear margin on every workload (measured 1.5-2.1x; the gate
            # leaves room for shared-runner noise).
            assert vm["speedup_vs_vm_base"] >= 1.3, (
                f"register allocation only {vm['speedup_vs_vm_base']}x "
                f"over the named-cell VM on {workload}/{configuration}")
            # The compare-and-branch superinstruction delta is recorded per
            # row (speedup_vs_vm_nocmp); the gate only guards against a real
            # regression — its win is a few percent, within runner noise.
            assert vm["speedup_vs_vm_nocmp"] >= 0.9, (
                f"compare-and-branch fusion slowed {workload}/{configuration} "
                f"({vm['speedup_vs_vm_nocmp']}x vs the unfused pair)")
            # The adaptive-specialization gate: unboxed int slots, runtime
            # quickening and the synthesized superinstructions together must
            # beat the PR 5 VM by >= 1.2x on every workload (measured
            # 1.6-1.8x on fibonacci, 2.0-2.2x on microbench, 1.4x on
            # userver; the gate leaves room for shared-runner noise).
            assert vm["speedup_vs_vm_nospec"] >= 1.2, (
                f"specialization only {vm['speedup_vs_vm_nospec']}x over "
                f"the PR 5 VM on {workload}/{configuration}")
    # The dense counting loop is where dispatch dominates: expect a solid
    # margin there, not a photo finish.
    if not SMOKE:
        assert indexed[("microbench", "none", "vm")]["speedup_vs_interp"] >= 1.3
    # Record the specialize on/off comparison (every workload/configuration
    # cell, plus the min/max speedups) in the PR-over-PR artifact.  Written
    # in smoke mode too so the CI bench-smoke job can assert the key exists
    # alongside a specialize-off row.
    summary = backend_exp.specialize_summary(rows)
    artifact = backend_exp.merge_specialize_artifact(summary)
    print(f"merged specialize block into {artifact}")
    assert summary["workloads"], "no specialize rows recorded"
    for cell, entry in summary["workloads"].items():
        assert "specialize-on" in entry and "specialize-off" in entry, cell
        assert (entry["specialize-on"]["steps"]
                == entry["specialize-off"]["steps"]), cell
