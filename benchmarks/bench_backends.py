"""Backend shoot-out: bytecode VM vs tree-walking interpreter.

Raw instructions/sec (steps are charged in identical tree-walker units on
both backends, so the comparison is substrate-only) on fibonacci, the §5.1
counting loop, and the uServer request loop — with no instrumentation and
under full branch logging.
"""

from repro.experiments import backend_exp, print_table
from benchmarks.conftest import run_once


def _by_key(rows):
    return {(row["workload"], row["configuration"], row["backend"]): row
            for row in rows}


def test_vm_beats_interpreter(benchmark):
    rows = run_once(benchmark, backend_exp.backend_rows)
    print_table(rows, "Backend comparison - VM vs tree-walking interpreter")
    indexed = _by_key(rows)
    for workload in ("fibonacci", "microbench", "userver"):
        for configuration in ("none", "all branches"):
            interp = indexed[(workload, configuration, "interp")]
            vm = indexed[(workload, configuration, "vm")]
            # Identical work in tree-walker step units...
            assert vm["steps"] == interp["steps"]
            assert vm["branch_executions"] == interp["branch_executions"]
            # ...delivered faster by the bytecode dispatch loop.
            assert vm["instructions_per_sec"] > interp["instructions_per_sec"], (
                f"VM slower than interpreter on {workload}/{configuration}")
    # The dense counting loop is where dispatch dominates: expect a solid
    # margin there, not a photo finish.
    assert indexed[("microbench", "none", "vm")]["speedup_vs_interp"] >= 1.3
