"""Figure 5: CPU time of diff under the four instrumentation configurations.

Paper shape: dynamic and dynamic+static are the cheapest; static and
all-branches pay for logging every content-dependent comparison branch.
"""

from repro.experiments import diff_exp, print_table
from benchmarks.conftest import run_once


def test_fig5_diff_overhead(benchmark, diff_setup):
    pipeline, analysis = diff_setup
    rows = run_once(benchmark, diff_exp.figure5_rows, pipeline, analysis)
    print_table(rows, "Figure 5 - diff CPU time (normalised to none = 100%)")
    cpu = {row["configuration"]: row["cpu_time_percent"] for row in rows}
    assert cpu["dynamic"] <= cpu["all branches"]
    assert cpu["dynamic+static"] <= cpu["all branches"] + 1.0
    assert cpu["static"] <= cpu["all branches"] + 1.0
    locations = {row["configuration"]: row["instrumented_branch_locations"] for row in rows}
    assert locations["dynamic"] <= locations["dynamic+static"] <= locations["all branches"]
