"""Table 4: symbolic branch locations/executions logged vs not logged (uServer).

Paper shape: static and all-branches leave nothing unlogged; dynamic leaves
the most unlogged symbolic executions (especially at low coverage); the number
of unlogged symbolic locations correlates with the replay times of Table 3.
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def _unlogged(cell: str) -> int:
    return int(cell.split("/")[0].strip())


def test_table4_branch_logging_split(benchmark, userver_setup):
    rows = run_once(benchmark, userver_exp.table4_rows, userver_setup, scenarios=(1, 4))
    print_table(rows, "Table 4 - symbolic branches logged / not logged (uServer)")
    for row in rows:
        config = row["configuration"]
        unlogged_locations = _unlogged(row["not logged (locations/executions)"])
        if config.startswith("static") or config.startswith("all branches"):
            assert unlogged_locations == 0, f"{config} left symbolic branches unlogged"
    # Dynamic never logs more than the combined method.
    by_key = {(row["experiment"], row["configuration"]): row for row in rows}
    for experiment in ("exp1", "exp4"):
        for coverage in ("lc", "hc"):
            dynamic = by_key[(experiment, f"dynamic ({coverage})")]
            combined = by_key[(experiment, f"dynamic+static ({coverage})")]
            assert (_unlogged(dynamic["not logged (locations/executions)"])
                    >= _unlogged(combined["not logged (locations/executions)"]))
