"""Figure 1: per-branch-location execution counts for mkdir.

Paper shape: only a few branch locations account for the symbolic executions,
and wherever a location has symbolic executions they cover (nearly) all of its
executions — a branch location is either always symbolic or always concrete.
"""

from repro.experiments import coreutils_exp, print_table
from benchmarks.conftest import run_once


def test_fig1_mkdir_branch_behavior(benchmark):
    rows = run_once(benchmark, coreutils_exp.figure1_rows, "mkdir")
    print_table(rows, "Figure 1 - branch executions per location (mkdir)")
    assert rows, "no branches executed"
    symbolic_rows = [row for row in rows if row["symbolic_executions"] > 0]
    # Only a minority of branch locations are symbolic.
    assert 0 < len(symbolic_rows) < len(rows)
    # "Black bars cover the gray bars": locations are almost never mixed.
    mixed = [row for row in symbolic_rows
             if row["symbolic_executions"] < row["executions"]]
    assert len(mixed) <= max(1, len(symbolic_rows) // 4)
