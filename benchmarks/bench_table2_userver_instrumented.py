"""Table 2: number of instrumented branch locations in the uServer.

Paper shape: dynamic instruments the fewest locations (and more with higher
coverage), static and all-branches the most, and dynamic+static sits in
between (shrinking as coverage grows, because more statically-symbolic
branches are overridden by a dynamic "concrete" label).
"""

from repro.experiments import print_table, userver_exp
from benchmarks.conftest import run_once


def test_table2_instrumented_branch_locations(benchmark, userver_setup):
    rows = run_once(benchmark, userver_exp.table2_rows, userver_setup)
    print_table(rows, "Table 2 - instrumented branch locations (uServer)")
    counts = {row["configuration"]: row for row in rows}
    for coverage in ("LC", "HC"):
        assert (counts["dynamic"][coverage]
                <= counts["dynamic+static"][coverage]
                <= counts["all branches"][coverage])
        assert counts["static"][coverage] <= counts["all branches"][coverage]
    # More exploration can only label more branches symbolic.
    assert counts["dynamic"]["HC"] >= counts["dynamic"]["LC"]
    # And it can only shrink (or keep) the combined set.
    assert counts["dynamic+static"]["HC"] <= counts["dynamic+static"]["LC"]
