"""Setup shim so that editable installs work without the ``wheel`` package.

The environment this repository targets has no network access and no
``wheel`` distribution, so the PEP 517 editable path (which builds a wheel) is
unavailable.  ``pip install -e . --no-use-pep517 --no-build-isolation`` falls
back to this classic setup script.
"""

from setuptools import setup

setup()
